#include "core/session.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_pool.hpp"
#include "crypto/secret.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::core {

using net::CpuTimer;

namespace {

/// Serving-stack instruments (docs/OBSERVABILITY.md catalog). Phase series
/// mirror the paper's Fig. 10 decomposition; end-to-end series split by
/// scheme and result so denied requests never land in success latencies.
struct SessionMetrics {
  // Per-phase latency (shared family with construction2.cpp's c2.* phases).
  obs::Histogram& c1_upload;
  obs::Histogram& c1_sign;
  obs::Histogram& c2_upload;
  obs::Histogram& c1_display;
  obs::Histogram& c1_answer_hashes;
  obs::Histogram& c1_sig_verify;
  obs::Histogram& c1_interpolate;
  obs::Histogram& c2_display;
  obs::Histogram& c2_answer_hashes;
  obs::Histogram& c2_access;
  obs::Histogram& sp_verify;
  obs::Histogram& dh_fetch;

  // End-to-end serving outcome, split {scheme} x {result}.
  obs::Counter& c1_granted;
  obs::Counter& c1_denied;
  obs::Counter& c2_granted;
  obs::Counter& c2_denied;
  obs::Histogram& c1_granted_ms;
  obs::Histogram& c1_denied_ms;
  obs::Histogram& c2_granted_ms;
  obs::Histogram& c2_denied_ms;

  // Sharer-side traffic and the retry loop of access_with_retries.
  obs::Counter& shares_c1;
  obs::Counter& shares_c2;
  obs::Counter& refreshes;
  obs::Counter& revokes;
  obs::Counter& access_retried;
  obs::Counter& access_denied;
  obs::Counter& access_granted;

  // Fault-retry layer (DESIGN.md "Fault model & retry semantics").
  obs::Counter& retries_draw;
  obs::Counter& retries_fault;
  obs::Counter& deadline_exceeded;

  static obs::Histogram& phase(const char* name) {
    return obs::MetricsRegistry::global().histogram(
        "sp_phase_latency_ms", "Per-phase serving latency",
        obs::Histogram::default_latency_bounds_ms(), {{"phase", name}});
  }
  static obs::Counter& outcome(const char* scheme, const char* result) {
    return obs::MetricsRegistry::global().counter(
        "sp_access_requests_total", "Access requests by scheme and outcome",
        {{"result", result}, {"scheme", scheme}});
  }
  static obs::Histogram& outcome_ms(const char* scheme, const char* result) {
    return obs::MetricsRegistry::global().histogram(
        "sp_access_latency_ms", "End-to-end access wall time (local work only)",
        obs::Histogram::default_latency_bounds_ms(),
        {{"result", result}, {"scheme", scheme}});
  }

  static SessionMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SessionMetrics m{
        phase("c1.upload"),
        phase("c1.sign"),
        phase("c2.upload"),
        phase("c1.display"),
        phase("c1.answer_hashes"),
        phase("c1.sig_verify"),
        phase("c1.interpolate"),
        phase("c2.display"),
        phase("c2.answer_hashes"),
        phase("c2.access"),
        phase("sp.verify"),
        phase("dh.fetch"),
        outcome("c1", "granted"),
        outcome("c1", "denied"),
        outcome("c2", "granted"),
        outcome("c2", "denied"),
        outcome_ms("c1", "granted"),
        outcome_ms("c1", "denied"),
        outcome_ms("c2", "granted"),
        outcome_ms("c2", "denied"),
        reg.counter("sp_share_requests_total", "Share (upload) operations by scheme",
                    {{"scheme", "c1"}}),
        reg.counter("sp_share_requests_total", "", {{"scheme", "c2"}}),
        reg.counter("sp_refresh_requests_total", "Puzzle refresh operations"),
        reg.counter("sp_revoke_requests_total",
                    "Puzzle revocations (object pulled from the DH pending refresh)"),
        reg.counter("sp_access_retried_total",
                    "Extra challenge draws taken by access_with_retries"),
        reg.counter("sp_access_denied_total",
                    "access_with_retries calls that exhausted every draw denied"),
        reg.counter("sp_access_granted_total",
                    "access_with_retries calls that ended in a grant"),
        reg.counter("sp_retries_total", "Serving retries by phase", {{"phase", "draw"}}),
        reg.counter("sp_retries_total", "", {{"phase", "fault"}}),
        reg.counter("sp_deadline_exceeded_total",
                    "Requests whose retry budget ran out against the modeled deadline"),
    };
    return m;
  }
};

}  // namespace

namespace {

storage::DurableStore::Options host_store_options(const PersistenceConfig& p, const char* sub) {
  storage::DurableStore::Options opts;
  opts.dir = p.dir + "/" + sub;
  opts.wal.fsync = p.fsync;
  opts.checkpoint_wal_bytes = p.checkpoint_wal_bytes;
  return opts;
}

// Both factories rely on guaranteed copy elision: the hosts are pinned
// (shard mutexes), so the conditional construction must happen directly in
// the member's storage.
osn::ServiceProvider make_sp(const std::optional<PersistenceConfig>& p) {
  if (p) return osn::ServiceProvider(host_store_options(*p, "sp"));
  return osn::ServiceProvider();
}

osn::StorageHost make_dh(const std::optional<PersistenceConfig>& p) {
  if (p) return osn::StorageHost(host_store_options(*p, "dh"));
  return osn::StorageHost();
}

}  // namespace

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      curve_(ec::preset_params(config_.pairing_preset)),
      c1_(std::make_unique<Construction1>(
          // Shamir field = the pairing base field: one parameter set drives
          // both constructions, as one security level should.
          curve_.fp(), curve_)),
      c2_(std::make_unique<Construction2>(curve_)),
      sp_(make_sp(config_.persistence)),
      dh_(make_dh(config_.persistence)),
      network_(config_.link, crypto::Drbg(config_.seed + "-net")),
      injector_(config_.faults ? std::make_unique<net::FaultInjector>(*config_.faults) : nullptr),
      rng_(config_.seed + "-session"),
      cache_(config_.cache ? std::make_unique<ServeCache>(*config_.cache) : nullptr),
      verify_queue_(std::make_unique<VerifyQueue>()) {}

crypto::Drbg Session::fork_rng(const std::string& label) const {
  const sp::MutexLock lock(rng_mutex_);
  return rng_.fork(label);
}

osn::UserId Session::register_user(const std::string& name) {
  const osn::UserId id = graph_.add_user(name);
  crypto::Drbg key_rng = fork_rng("user-keys-" + std::to_string(id));
  // Emplace straight into the map (no intermediate KeyPair copy that would
  // leave an unwiped secret on the stack); keygen under the lock is fine —
  // registration is rare compared to serving.
  const sp::MutexLock lock(keys_mutex_);
  user_keys_.emplace(id, sig::Schnorr(curve_, curve_.hash_to_group(crypto::to_bytes("sp-schnorr-g")))
                             .keygen(key_rng));
  return id;
}

void Session::befriend(osn::UserId a, osn::UserId b) { graph_.befriend(a, b); }

ShareReceipt Session::share_c1(osn::UserId sharer, std::span<const std::uint8_t> object,
                               const Context& ctx, std::size_t k, std::size_t n,
                               const net::DeviceProfile& device, osn::Visibility visibility) {
  // Map nodes are stable and keys are never erased, so the reference stays
  // valid after the lookup lock drops.
  const sig::KeyPair* keys = nullptr;
  {
    const sp::MutexLock lock(keys_mutex_);
    keys = &user_keys_.at(sharer);
  }
  crypto::Drbg op_rng = fork_rng("share-c1");
  net::CostLedger ledger(device);
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.shares_c1.inc();

  // -- local: Upload subroutine (crypto) --------------------------------
  obs::TraceSpan upload_span(metrics.c1_upload, ledger);
  auto result = c1_->upload(object, ctx, k, n, *keys, op_rng);
  upload_span.stop();

  // -- network: store O_{K_O} at the DH ---------------------------------
  ledger.add_network(network_.transfer_ms(result.encrypted_object.size()));
  ledger.add_bytes(result.encrypted_object.size());
  const std::string url = dh_.store(std::move(result.encrypted_object));

  // -- local: patch URL_O and re-sign (DoS countermeasure) --------------
  obs::TraceSpan sign_span(metrics.c1_sign, ledger);
  result.puzzle.url = url;
  c1_->sign_puzzle(result.puzzle, *keys);
  const Bytes record = result.puzzle.serialize();
  sign_span.stop();

  // -- network: upload Z_O to the SP ------------------------------------
  ledger.add_network(network_.transfer_ms(record.size()));
  ledger.add_bytes(record.size());
  const std::string post_id = sp_.store_record(record);

  StoredPuzzle stored;
  stored.kind = SchemeKind::kConstruction1;
  stored.sharer = sharer;
  stored.visibility = visibility;
  stored.puzzle = std::move(result.puzzle);
  stored.url = url;
  {
    const sp::UniqueLock lock(puzzles_mutex_);
    puzzles_.emplace(post_id, std::move(stored));
  }

  graph_.post(osn::Post{sharer, post_id, "shared a social puzzle", visibility});
  return ShareReceipt{post_id, ledger, object.size()};
}

ShareReceipt Session::share_c2(osn::UserId sharer, std::span<const std::uint8_t> object,
                               const Context& ctx, std::size_t k,
                               const net::DeviceProfile& device, osn::Visibility visibility) {
  crypto::Drbg op_rng = fork_rng("share-c2");
  net::CostLedger ledger(device);
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.shares_c2.inc();

  // -- local: Setup + Encrypt + Perturb (the heavy CP-ABE work) ----------
  obs::TraceSpan upload_span(metrics.c2_upload, ledger);
  auto files = c2_->upload(object, ctx, k, op_rng);
  upload_span.stop();

  // -- network: the paper's four cURL uploads (details, pub, master -> SP;
  //    ciphertext -> DH). Each file is a separately spawned cURL HTTPS
  //    request (cold connection: DNS + TCP + TLS ≈ 3 round trips), which is
  //    the "additional overhead caused by the cURL library" the paper blames
  //    for I2's network delay. C1's single warm-browser XHR pays 1.
  constexpr int kColdCurlRoundTrips = 3;
  const Bytes details = files.perturbed_tree.serialize();
  for (const std::size_t bytes :
       {details.size(), files.public_key.size(), files.master_key.size()}) {
    ledger.add_network(network_.transfer_ms(bytes, kColdCurlRoundTrips));
    ledger.add_bytes(bytes);
  }
  ledger.add_network(network_.transfer_ms(files.ciphertext.size(), kColdCurlRoundTrips));
  ledger.add_bytes(files.ciphertext.size());
  const std::string url = dh_.store(files.ciphertext);

  // SP view: τ' + PK + MK (it never sees τ or the object).
  sp_.observe("c2-details", details);
  sp_.observe("c2-public-key", files.public_key);
  sp_.observe("c2-master-key", files.master_key);

  StoredPuzzle stored;
  stored.kind = SchemeKind::kConstruction2;
  stored.sharer = sharer;
  stored.visibility = visibility;
  stored.c2_files = std::move(files);
  stored.url = url;

  const std::string post_id = sp_.store_record(details);
  {
    const sp::UniqueLock lock(puzzles_mutex_);
    puzzles_.emplace(post_id, std::move(stored));
  }
  graph_.post(osn::Post{sharer, post_id, "shared a social puzzle (ABE)", visibility});
  return ShareReceipt{post_id, ledger, object.size()};
}

ShareReceipt Session::refresh(osn::UserId sharer, const std::string& post_id,
                              std::span<const std::uint8_t> object, const Context& ctx,
                              const net::DeviceProfile& device) {
  // Single-writer path: exclusive for the whole body so concurrent accesses
  // see the old puzzle until the new one (record, blob, registry entry) is
  // complete. See DESIGN.md for the lock order.
  const sp::UniqueLock registry_lock(puzzles_mutex_);
  auto it = puzzles_.find(post_id);
  if (it == puzzles_.end()) throw std::out_of_range("Session::refresh: unknown post " + post_id);
  StoredPuzzle& stored = it->second;
  if (stored.sharer != sharer) {
    throw std::logic_error("Session::refresh: only the original sharer can refresh");
  }

  const std::string old_url = stored.url;
  net::CostLedger ledger(device);
  crypto::Drbg op_rng = fork_rng("refresh-" + post_id);
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.refreshes.inc();

  if (stored.kind == SchemeKind::kConstruction1) {
    const sig::KeyPair* keys = nullptr;
    {
      const sp::MutexLock lock(keys_mutex_);
      keys = &user_keys_.at(sharer);
    }
    const std::size_t k = stored.puzzle->threshold;
    const std::size_t n = stored.puzzle->n();

    obs::TraceSpan upload_span(metrics.c1_upload, ledger);
    auto result = c1_->upload(object, ctx, k, n, *keys, op_rng);
    upload_span.stop();

    ledger.add_network(network_.transfer_ms(result.encrypted_object.size()));
    ledger.add_bytes(result.encrypted_object.size());
    const std::string url = dh_.store(std::move(result.encrypted_object));

    obs::TraceSpan sign_span(metrics.c1_sign, ledger);
    result.puzzle.url = url;
    c1_->sign_puzzle(result.puzzle, *keys);
    const Bytes record = result.puzzle.serialize();
    sign_span.stop();

    ledger.add_network(network_.transfer_ms(record.size()));
    ledger.add_bytes(record.size());
    sp_.replace_record(post_id, record);

    stored.puzzle = std::move(result.puzzle);
    stored.url = url;
  } else {
    const std::size_t k = stored.c2_files->threshold;

    obs::TraceSpan upload_span(metrics.c2_upload, ledger);
    auto files = c2_->upload(object, ctx, k, op_rng);
    upload_span.stop();

    constexpr int kColdCurlRoundTrips = 3;
    const Bytes details = files.perturbed_tree.serialize();
    for (const std::size_t bytes :
         {details.size(), files.public_key.size(), files.master_key.size()}) {
      ledger.add_network(network_.transfer_ms(bytes, kColdCurlRoundTrips));
      ledger.add_bytes(bytes);
    }
    ledger.add_network(network_.transfer_ms(files.ciphertext.size(), kColdCurlRoundTrips));
    ledger.add_bytes(files.ciphertext.size());
    const std::string url = dh_.store(files.ciphertext);

    sp_.observe("c2-details", details);
    sp_.observe("c2-public-key", files.public_key);
    sp_.observe("c2-master-key", files.master_key);
    sp_.replace_record(post_id, details);

    stored.c2_files = std::move(files);
    stored.url = url;
  }

  // Retire the stale ciphertext so leaked keys can't fetch it later (a
  // revoked post already pulled it). The epoch bump plus the cache sweep
  // guarantee no memoized state from the old puzzle generation can satisfy
  // a request against the new one — and clear any DH-miss markers, so a
  // revoked post resumes serving the moment its refresh lands.
  if (stored.revoked) {
    stored.revoked = false;
  } else {
    dh_.remove(old_url);
  }
  ++stored.epoch;
  if (cache_) cache_->invalidate_post(post_id);
  return ShareReceipt{post_id, ledger, object.size()};
}

void Session::revoke(osn::UserId sharer, const std::string& post_id) {
  // Same single-writer discipline as refresh: exclusive for the whole body,
  // so a concurrent access either completed against the live object or
  // starts against the revoked state — never a cached half of each.
  const sp::UniqueLock registry_lock(puzzles_mutex_);
  auto it = puzzles_.find(post_id);
  if (it == puzzles_.end()) throw std::out_of_range("Session::revoke: unknown post " + post_id);
  StoredPuzzle& stored = it->second;
  if (stored.sharer != sharer) {
    throw std::logic_error("Session::revoke: only the original sharer can revoke");
  }
  if (stored.revoked) return;  // idempotent
  SessionMetrics::get().revokes.inc();
  dh_.remove(stored.url);
  stored.revoked = true;
  ++stored.epoch;
  if (cache_) cache_->invalidate_post(post_id);
}

std::uint64_t Session::puzzle_epoch(const std::string& post_id) const {
  const sp::SharedLock registry_lock(puzzles_mutex_);
  return puzzles_.at(post_id).epoch;
}

AccessResult Session::access(osn::UserId receiver, const std::string& post_id,
                             const Knowledge& knowledge, const net::DeviceProfile& device) const {
  // Root-or-child: a direct access() call roots its own trace; one made
  // inside access_with_retries' attempt context nests under that attempt.
  const obs::TraceContext enclosing = obs::Tracer::current();
  obs::Span root = enclosing.sampled() ? obs::Span(enclosing, "sp.access")
                                       : obs::Tracer::global().start_trace("sp.access");
  const obs::TraceContext trace = root.context();
  const obs::ContextGuard trace_guard(trace);
  if (root.recording()) root.add_attr("receiver", static_cast<std::int64_t>(receiver));
  // Shared for the whole request: many accesses proceed in parallel, while
  // refresh (exclusive) waits for in-flight requests and blocks new ones.
  const sp::SharedLock registry_lock(puzzles_mutex_);
  const auto it = puzzles_.find(post_id);
  if (it == puzzles_.end()) throw std::out_of_range("Session::access: unknown post " + post_id);
  const StoredPuzzle& stored = it->second;
  // OSN-level ACL for friends-only posts; public (Twitter-style) posts rely
  // on the puzzle alone — "the context-based access mechanism will add a
  // layer of privacy protection" (§I).
  if (stored.visibility == osn::Visibility::kFriends && receiver != stored.sharer &&
      !graph_.are_friends(receiver, stored.sharer)) {
    throw std::logic_error("Session::access: receiver is not in the sharer's network");
  }
  net::CostLedger ledger(device);
  crypto::Drbg op_rng = fork_rng("access-" + post_id);
  // Each attempt gets its own fault tape: decisions depend only on (plan
  // seed, receiver, post, per-(receiver, post) ordinal), never on thread
  // scheduling. See faults.hpp's determinism contract.
  std::optional<net::FaultStream> fault_tape;
  if (injector_) fault_tape = injector_->stream(receiver, post_id);
  net::FaultStream* faults = fault_tape ? &*fault_tape : nullptr;
  const bool is_c1 = stored.kind == SchemeKind::kConstruction1;
  if (root.recording()) root.add_attr("scheme", is_c1 ? "c1" : "c2");
  CpuTimer wall;
  const AccessResult result =
      is_c1 ? access_c1(post_id, stored, knowledge, ledger, op_rng, faults, trace)
            : access_c2(post_id, stored, knowledge, ledger, op_rng, faults, trace);
  // End-to-end outcome series. `success()` (granted AND object recovered) is
  // the label, so a granted-but-tampered request counts as denied here.
  // Exemplar-carrying observe: when this request is traced, the latency
  // sample remembers which trace explains it (zero trace id = plain observe).
  const double elapsed = wall.elapsed_ms();
  const obs::TraceId tid = trace.trace_id();
  SessionMetrics& metrics = SessionMetrics::get();
  if (is_c1) {
    (result.success() ? metrics.c1_granted : metrics.c1_denied).inc();
    (result.success() ? metrics.c1_granted_ms : metrics.c1_denied_ms)
        .observe_exemplar(elapsed, tid.hi, tid.lo);
  } else {
    (result.success() ? metrics.c2_granted : metrics.c2_denied).inc();
    (result.success() ? metrics.c2_granted_ms : metrics.c2_denied_ms)
        .observe_exemplar(elapsed, tid.hi, tid.lo);
  }
  if (root.recording()) {
    root.add_attr("granted", result.granted ? "true" : "false");
    if (result.error) {
      root.add_attr("error", net::to_string(*result.error));
      root.set_status(net::is_transient(*result.error) ? obs::SpanStatus::kTransientFault
                                                       : obs::SpanStatus::kTerminal);
    }
  }
  return result;
}

AccessResult Session::access_with_retries(osn::UserId receiver, const std::string& post_id,
                                          const Knowledge& knowledge,
                                          const net::DeviceProfile& device, int max_draws) const {
  obs::Span root = obs::Tracer::global().start_trace("sp.request");
  return access_with_retries_impl(receiver, post_id, knowledge, device, max_draws, root);
}

AccessResult Session::access_with_retries_impl(osn::UserId receiver, const std::string& post_id,
                                               const Knowledge& knowledge,
                                               const net::DeviceProfile& device, int max_draws,
                                               obs::Span& root) const {
  if (max_draws < 1) throw std::invalid_argument("access_with_retries: max_draws >= 1");
  if (root.recording()) root.add_attr("receiver", static_cast<std::int64_t>(receiver));
  const obs::TraceContext root_ctx = root.context();
  SessionMetrics& metrics = SessionMetrics::get();
  const net::RetryPolicy& policy = config_.retry;
  // Backoff jitter replays with the fault schedule (seeded, per-request),
  // so a retried chaos run costs the same modeled time every run.
  std::optional<net::FaultStream> jitter_tape;
  if (injector_) {
    jitter_tape = injector_->stream_for_label("retry-" + std::to_string(receiver) + "-" + post_id);
  }

  net::CostLedger total(device);
  AccessResult result;
  int attempts = 0;
  int draws = 1;          // challenge draws spent (first attempt included)
  int fault_retries = 0;  // transient-fault retries spent
  for (;;) {
    ++attempts;
    // One child span per attempt: the full retry/fault chain is readable off
    // the exported trace (chaos tests pin this shape).
    obs::Span attempt(root_ctx, "sp.attempt");
    if (attempt.recording()) attempt.add_attr("attempt", static_cast<std::int64_t>(attempts));
    const obs::ContextGuard attempt_guard(attempt.context());
    result = access(receiver, post_id, knowledge, device);
    total.merge(result.cost);
    if (result.success()) break;

    if (result.error && net::is_transient(*result.error)) {
      attempt.set_status(obs::SpanStatus::kTransientFault);
      attempt.add_attr("fault", net::to_string(*result.error));
      // Infrastructure blip: retry under the policy's attempt/deadline budget.
      if (attempts >= policy.max_attempts) break;
      const double unit = jitter_tape ? jitter_tape->jitter_unit(
                                            static_cast<std::uint64_t>(fault_retries))
                                      : 0.0;
      const double wait = policy.backoff_ms(fault_retries, unit);
      if (total.total_ms() + wait > policy.deadline_ms) {
        result.error = net::ServeError::kDeadlineExceeded;
        metrics.deadline_exceeded.inc();
        attempt.set_status(obs::SpanStatus::kTerminal);
        attempt.add_attr("deadline", "exceeded");
        break;
      }
      attempt.add_attr("backoff_ms", wait);
      total.add_wait(wait);
      ++fault_retries;
      metrics.retries_fault.inc();
      continue;
    }
    if (result.error) {
      attempt.set_status(obs::SpanStatus::kTerminal);
      attempt.add_attr("fault", net::to_string(*result.error));
      break;  // terminal fault — retrying cannot help
    }

    // Clean denial: C1's DisplayPuzzle drew an unlucky question subset; a
    // fresh draw may cover the receiver's knowledge.
    if (draws >= max_draws) break;
    ++draws;
    attempt.add_attr("redraw", "true");
    metrics.access_retried.inc();
    metrics.retries_draw.inc();
  }
  result.cost = total;
  result.attempts = attempts;
  if (root.recording()) {
    root.add_attr("attempts", static_cast<std::int64_t>(attempts));
    if (!result.success() && result.error) {
      root.set_status(net::is_transient(*result.error) ? obs::SpanStatus::kTransientFault
                                                       : obs::SpanStatus::kTerminal);
    }
  }
  (result.success() ? metrics.access_granted : metrics.access_denied).inc();
  return result;
}

std::vector<AccessResult> Session::access_parallel(std::span<const AccessRequest> requests,
                                                   std::size_t num_threads) const {
  std::vector<AccessResult> results(requests.size());
  if (requests.empty()) return results;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, requests.size());
  std::vector<std::exception_ptr> errors(requests.size());
  {
    // Queue bound = 2x workers: enough to keep every worker fed while the
    // submitting thread applies back-pressure instead of buffering the
    // whole batch.
    ThreadPool pool(num_threads, 2 * num_threads);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      // The request's trace roots HERE, at submit time, and the root context
      // is installed around submit() so the pool's queue-wait and execution
      // spans land inside this request's trace. The worker lambda owns the
      // root via shared_ptr: it ends when the lambda is destroyed, which the
      // pool guarantees happens after its pool.task span ended — the root
      // finishes last, so no child is sealed out as a straggler.
      auto root = std::make_shared<obs::Span>(obs::Tracer::global().start_trace("sp.request"));
      const obs::ContextGuard guard(root->context());
      pool.submit([this, &requests, &results, &errors, i, root] {
        try {
          const AccessRequest& req = requests[i];
          // Through the retry loop, so batch serving survives transient
          // faults the same way sequential serving does.
          results[i] = access_with_retries_impl(req.receiver, req.post_id, req.knowledge,
                                                req.device, req.max_draws, *root);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return results;
}

AccessResult Session::access_c1(const std::string& post_id, const StoredPuzzle& stored,
                                const Knowledge& knowledge, net::CostLedger& ledger,
                                crypto::Drbg& rng, net::FaultStream* faults,
                                const obs::TraceContext& trace) const {
  const Puzzle& puzzle = *stored.puzzle;
  SessionMetrics& metrics = SessionMetrics::get();
  AccessResult result;
  // One request/response exchange under the fault schedule: success charges
  // the modeled delay + bytes, a timeout charges the plan's wasted wait and
  // reports the error instead.
  const auto exchange = [&](std::size_t bytes, int round_trips) -> std::optional<net::ServeError> {
    const net::Expected<double> delay = network_.try_transfer_ms(bytes, round_trips, faults);
    if (!delay.ok()) {
      ledger.add_wait(injector_->plan().transfer_timeout_ms);
      return delay.error();
    }
    ledger.add_network(delay.value());
    ledger.add_bytes(bytes);
    return std::nullopt;
  };

  // -- SP: DisplayPuzzle; network: challenge download -------------------
  obs::Span display_tspan(trace, "c1.display");
  obs::TraceSpan display_span(metrics.c1_display);
  const auto challenge = Construction1::display_puzzle(puzzle, rng);
  display_span.stop();
  display_tspan.end();
  if (const auto err = exchange(challenge.wire_size(), 1)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  // -- receiver local: AnswerPuzzle (hashing) ----------------------------
  obs::Span answer_tspan(trace, "c1.answer_hashes");
  obs::TraceSpan answer_span(metrics.c1_answer_hashes, ledger);
  const auto response = Construction1::answer_puzzle(challenge, knowledge);
  answer_span.stop();
  answer_tspan.end();

  // -- SP availability: a transient outage drops the Verify exchange; the
  //    receiver still paid for the response upload it sent into the void.
  if (!sp_.serve_ok(faults)) {
    ledger.add_network(network_.transfer_ms(response.wire_size()));
    ledger.add_bytes(response.wire_size());
    result.error = net::ServeError::kSpUnavailable;
    result.cost = ledger;
    return result;
  }

  // -- network: response up, reply down (one exchange) -------------------
  // The SP's observation log gets everything the receiver sends.
  for (const Bytes& h : response.hashes) sp_.observe("c1-response-hash", h);
  obs::Span verify_tspan(trace, "sp.verify");
  obs::TraceSpan verify_span(metrics.sp_verify);
  // Verify batches its check set through the shared queue; the guard makes
  // this span the parent of the batch's verify.wait/verify.job spans.
  auto reply = [&] {
    const obs::ContextGuard verify_guard(verify_tspan.context());
    return Construction1::verify(puzzle, challenge, response.hashes, verify_queue_.get());
  }();
  verify_span.stop();
  verify_tspan.end();
  if (const auto err = exchange(response.wire_size() + reply.wire_size(), 1)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  result.granted = reply.granted;
  if (!reply.granted) {
    result.cost = ledger;
    return result;
  }

  // -- partial SP reply: some granted shares are lost in delivery. While
  //    >= k survive the request degrades gracefully (Access only needs
  //    threshold shares); below k the reply is unserviceable.
  if (const std::size_t dropped = sp_.partial_drop(reply.shares.size(), faults); dropped > 0) {
    reply.shares.resize(reply.shares.size() - dropped);
    if (reply.shares.size() < puzzle.threshold) {
      result.granted = false;
      result.error = net::ServeError::kSpUnavailable;
      result.cost = ledger;
      return result;
    }
  }

  // -- receiver local: verify the sharer's signature on (URL, k, K_Z) ----
  // Memoized per (post, epoch, URL): the signature covers immutable puzzle
  // state, so a hot post pays the two scalar multiplications once. Cache
  // consulted only after the grant — it can shortcut work, never decisions.
  obs::Span sig_tspan(trace, "c1.sig_verify");
  bool sig_ok = false;
  bool sig_cached = false;
  const std::string sig_entry_id =
      cache_ ? ServeCache::key(post_id, stored.epoch, ServeCache::Kind::kC1Sig, reply.url)
             : std::string();
  if (cache_) {
    sig_cached = cache_->get(sig_entry_id, ServeCache::Kind::kC1Sig).has_value();
    sig_ok = sig_cached;  // only verified signatures are ever inserted
    sig_tspan.add_attr("cache", sig_cached ? "hit" : "miss");
  }
  if (!sig_cached) {
    obs::TraceSpan sig_span(metrics.c1_sig_verify, ledger);
    Puzzle verified_view = puzzle;  // fields as received from the SP
    verified_view.url = reply.url;
    sig_ok = c1_->verify_puzzle_signature(verified_view);
    sig_span.stop();
    if (sig_ok && cache_) cache_->put(sig_entry_id, ServeCache::Kind::kC1Sig, Bytes{1});
  }
  sig_tspan.end();
  if (!sig_ok) {
    result.granted = false;
    result.cost = ledger;
    return result;
  }

  // -- network: download O_{K_O} from the DH -----------------------------
  // A negative-cache hit means this URL was authoritatively absent (e.g.
  // the post is revoked): fail fast without paying the round trip. The
  // refreshing re-upload bumps the epoch, making the marker unreachable.
  const std::string neg_entry_id =
      cache_ ? ServeCache::key(post_id, stored.epoch, ServeCache::Kind::kDhNegative, reply.url)
             : std::string();
  if (cache_ && cache_->negative_hit(neg_entry_id)) {
    result.error = net::ServeError::kDhMiss;
    result.cost = ledger;
    return result;
  }
  Bytes encrypted;
  {
    obs::Span fetch_tspan(trace, "dh.fetch");
    const obs::TraceSpan fetch_span(metrics.dh_fetch);
    net::Expected<Bytes> fetched = dh_.try_fetch(reply.url, faults);
    if (!fetched.ok()) {
      // Injected miss, or a malicious SP pointing at a missing object.
      fetch_tspan.set_status(obs::SpanStatus::kTransientFault);
      // Only an authoritative absence is worth remembering: an injected
      // fault on a live blob must not poison the negative cache.
      if (cache_ && fetched.error() == net::ServeError::kDhMiss && !dh_.exists(reply.url)) {
        cache_->negative_put(neg_entry_id);
      }
      result.error = fetched.error();
      result.cost = ledger;
      return result;
    }
    encrypted = std::move(fetched).value();
  }
  if (const auto err = exchange(encrypted.size(), 1)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  // -- receiver local: Access (unblind, Lagrange, decrypt) --------------
  obs::Span access_tspan(trace, "c1.interpolate");
  obs::TraceSpan access_span(metrics.c1_interpolate, ledger);
  try {
    result.object = c1_->access(puzzle, challenge, reply, knowledge, encrypted);
  } catch (const std::exception&) {
    result.object = std::nullopt;  // delivered bytes too mangled to parse
  }
  access_span.stop();
  access_tspan.end();
  // Granted but undecryptable = the delivered bytes are bad (injected
  // corruption or a tampering host), never a silent empty object.
  if (!result.object) result.error = net::ServeError::kCorruptedBlob;
  result.cost = ledger;
  return result;
}

AccessResult Session::access_c2(const std::string& post_id, const StoredPuzzle& stored,
                                const Knowledge& knowledge, net::CostLedger& ledger,
                                crypto::Drbg& rng, net::FaultStream* faults,
                                const obs::TraceContext& trace) const {
  const auto& files = *stored.c2_files;
  SessionMetrics& metrics = SessionMetrics::get();
  AccessResult result;
  const auto exchange = [&](std::size_t bytes, int round_trips) -> std::optional<net::ServeError> {
    const net::Expected<double> delay = network_.try_transfer_ms(bytes, round_trips, faults);
    if (!delay.ok()) {
      ledger.add_wait(injector_->plan().transfer_timeout_ms);
      return delay.error();
    }
    ledger.add_network(delay.value());
    ledger.add_bytes(bytes);
    return std::nullopt;
  };

  // -- network: download details (τ' questions) --------------------------
  obs::Span display_tspan(trace, "c2.display");
  obs::TraceSpan display_span(metrics.c2_display);
  const auto challenge = Construction2::display_puzzle(files.perturbed_tree, files.threshold);
  display_span.stop();
  display_tspan.end();
  if (const auto err = exchange(challenge.wire_size(), 1)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  // -- receiver local: hash answers --------------------------------------
  obs::Span answer_tspan(trace, "c2.answer_hashes");
  obs::TraceSpan answer_span(metrics.c2_answer_hashes, ledger);
  const auto response = Construction2::answer_puzzle(challenge, knowledge);
  answer_span.stop();
  answer_tspan.end();

  // -- SP availability (same semantics as C1's Verify exchange) ----------
  if (!sp_.serve_ok(faults)) {
    ledger.add_network(network_.transfer_ms(response.wire_size()));
    ledger.add_bytes(response.wire_size());
    result.error = net::ServeError::kSpUnavailable;
    result.cost = ledger;
    return result;
  }

  for (const std::string& h : response.answer_hashes) {
    sp_.observe("c2-response-hash", crypto::to_bytes(h));
  }
  obs::Span verify_tspan(trace, "sp.verify");
  obs::TraceSpan verify_span(metrics.sp_verify);
  const auto reply = [&] {
    const obs::ContextGuard verify_guard(verify_tspan.context());
    return Construction2::verify(files.perturbed_tree, files.threshold, challenge, response,
                                 stored.url, verify_queue_.get());
  }();
  verify_span.stop();
  verify_tspan.end();
  if (const auto err = exchange(response.wire_size() + reply.wire_size(files), 1)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  result.granted = reply.granted;
  if (!reply.granted) {
    result.cost = ledger;
    return result;
  }

  // -- network: three file downloads (CT' from DH; PK, MK from SP), again
  //    one cold cURL connection each in the paper's Qt receiver -----------
  constexpr int kColdCurlRoundTrips = 3;
  const std::string neg_entry_id =
      cache_ ? ServeCache::key(post_id, stored.epoch, ServeCache::Kind::kDhNegative, reply.url)
             : std::string();
  if (cache_ && cache_->negative_hit(neg_entry_id)) {
    result.error = net::ServeError::kDhMiss;  // known-absent: skip the round trip
    result.cost = ledger;
    return result;
  }
  Bytes ciphertext;
  {
    obs::Span fetch_tspan(trace, "dh.fetch");
    const obs::TraceSpan fetch_span(metrics.dh_fetch);
    net::Expected<Bytes> fetched = dh_.try_fetch(reply.url, faults);
    if (!fetched.ok()) {
      fetch_tspan.set_status(obs::SpanStatus::kTransientFault);
      if (cache_ && fetched.error() == net::ServeError::kDhMiss && !dh_.exists(reply.url)) {
        cache_->negative_put(neg_entry_id);
      }
      result.error = fetched.error();
      result.cost = ledger;
      return result;
    }
    ciphertext = std::move(fetched).value();
  }
  if (const auto err = exchange(ciphertext.size(), kColdCurlRoundTrips)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  // -- receiver local: Reconstruct + KeyGen + Decrypt --------------------
  // Memoized per (post, epoch): a successful access proved (via the GCM
  // tag) which DEM key seals this epoch's envelope, so hot posts skip the
  // pairing-heavy phases AND the PK/MK downloads. The lookup happens only
  // after Verify granted and the ciphertext arrived: a hit can never widen
  // access, only cut the cost of access already granted.
  const std::string dem_entry_id =
      cache_ ? ServeCache::key(post_id, stored.epoch, ServeCache::Kind::kC2Dem) : std::string();
  if (cache_) {
    if (std::optional<Bytes> dem = cache_->get(dem_entry_id, ServeCache::Kind::kC2Dem)) {
      obs::Span access_tspan(trace, "c2.access");
      access_tspan.add_attr("cache", "hit");
      obs::TraceSpan access_span(metrics.c2_access, ledger);
      result.object = Construction2::open_sealed(ciphertext, *dem);
      crypto::secure_wipe(*dem);
      access_span.stop();
      access_tspan.end();
      // A delivered-copy corruption fails the envelope tag exactly like the
      // full path; the cached key itself stays valid for this epoch.
      if (!result.object) result.error = net::ServeError::kCorruptedBlob;
      result.cost = ledger;
      return result;
    }
  }
  if (const auto err = exchange(files.public_key.size(), kColdCurlRoundTrips)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }
  if (const auto err = exchange(files.master_key.size(), kColdCurlRoundTrips)) {
    result.error = err;
    result.cost = ledger;
    return result;
  }

  obs::Span access_tspan(trace, "c2.access");
  if (cache_) access_tspan.add_attr("cache", "miss");
  obs::TraceSpan access_span(metrics.c2_access, ledger);
  Bytes dem_key;
  try {
    // Batched CP-ABE leaf pairings run through the queue; parent them here.
    const obs::ContextGuard access_guard(access_tspan.context());
    result.object = c2_->access(ciphertext, files.public_key, files.master_key, knowledge, rng,
                                verify_queue_->runner(), cache_ ? &dem_key : nullptr);
  } catch (const std::exception&) {
    result.object = std::nullopt;  // delivered bytes too mangled to parse
  }
  access_span.stop();
  access_tspan.end();
  if (!result.object) result.error = net::ServeError::kCorruptedBlob;
  // Fill only from a fully successful access: access() hands the key out
  // only after the envelope authenticated, so a fault mid-pipeline (partial
  // delivery, corrupted blob, wrong key) can never cache a poisoned entry.
  if (cache_ && result.object && !dem_key.empty()) {
    cache_->put(dem_entry_id, ServeCache::Kind::kC2Dem, std::move(dem_key));
  } else {
    crypto::secure_wipe(dem_key);
  }
  result.cost = ledger;
  return result;
}

}  // namespace sp::core
