// The strawman the paper dismisses in §I — implemented as a baseline:
//
//   "A trivial context-aware access control scheme can be constructed as
//    follows: sharer generates a symmetric encryption key (and then encrypts
//    data) by using all the context associated with the data, while the
//    receiver regenerates the key (to decrypt the data) by proving knowledge
//    of the entire context. However, such a trivial scheme is not useful
//    because most of the times receivers will not be aware of the entire
//    context related to the shared data."
//
// The key is derived from ALL answers; there is no threshold. The
// baseline-comparison bench quantifies the paper's argument: access success
// collapses for receivers with partial knowledge, where Construction 1/2
// with k < N keep working.
#pragma once

#include <optional>

#include "core/context.hpp"

namespace sp::core {

class TrivialScheme {
 public:
  struct SharedObject {
    std::vector<std::string> questions;  ///< displayed to receivers
    Bytes salt;                          ///< public KDF salt
    Bytes ciphertext;                    ///< sealed under the all-answers key

    [[nodiscard]] std::size_t wire_size() const;
  };

  /// Encrypts `object` under a key derived from every (normalized) answer.
  [[nodiscard]] static SharedObject share(std::span<const std::uint8_t> object,
                                          const Context& ctx, crypto::Drbg& rng);

  /// Attempts decryption with the receiver's knowledge. All N answers must
  /// be exactly right; there is no partial credit.
  [[nodiscard]] static std::optional<Bytes> access(const SharedObject& shared,
                                                   const Knowledge& knowledge);

 private:
  [[nodiscard]] static Bytes derive_key(const std::vector<std::string>& questions,
                                        const std::vector<std::string>& answers,
                                        std::span<const std::uint8_t> salt);
};

}  // namespace sp::core
