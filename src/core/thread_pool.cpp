#include "core/thread_pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::core {

namespace {

/// Process-wide pool instruments, shared by every ThreadPool instance (the
/// serving core creates one pool per access_parallel batch; gauges are
/// additive across them). Registered once, cached by reference.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Gauge& in_flight;
  obs::Gauge& threads;
  obs::Counter& tasks;
  obs::Counter& rejected;
  obs::Histogram& task_ms;

  static PoolMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static PoolMetrics m{
        reg.gauge("pool_queue_depth", "Tasks waiting for a worker"),
        reg.gauge("pool_in_flight", "Tasks currently executing on a worker"),
        reg.gauge("pool_threads", "Live worker threads across all pools"),
        reg.counter("pool_tasks_total", "Tasks accepted by submit()"),
        reg.counter("pool_rejected_total", "Submits rejected because the pool was shutting down"),
        reg.histogram("pool_task_ms", "Task execution wall time"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  PoolMetrics::get().threads.add(static_cast<std::int64_t>(num_threads));
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    sp::MutexLock lock(mutex_);
    stopping_ = true;
    if (join_started_) {
      // Another shutdown() owns the join. Returning here while its workers
      // are still running would let our caller destroy state that tasks are
      // touching, so wait until that join reports completion.
      while (!join_done_) join_done_cv_.wait(lock);
      return;
    }
    join_started_ = true;
    to_join.swap(workers_);
  }
  // Wake workers (to drain and exit) AND submitters blocked on a full
  // queue (to fail loudly instead of waiting forever).
  queue_has_work_.notify_all();
  queue_has_space_.notify_all();
  for (std::thread& w : to_join) w.join();
  PoolMetrics::get().threads.sub(static_cast<std::int64_t>(to_join.size()));
  {
    const sp::MutexLock lock(mutex_);
    join_done_ = true;
  }
  join_done_cv_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::get();
  QueuedTask item;
  item.fn = std::move(task);
  item.ctx = obs::Tracer::current();  // one TLS read when tracing is off
  if (item.ctx.sampled()) item.enqueue_ns = obs::Tracer::now_ns();
  {
    sp::MutexLock lock(mutex_);
    while (queue_.size() >= queue_capacity_ && !stopping_) queue_has_space_.wait(lock);
    if (stopping_) {
      // Pre-PR4 this silently dropped the task; a serving front-end must
      // hear about shed work, so reject loudly and count it.
      metrics.rejected.inc();
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(item));
    ++pending_;
  }
  metrics.tasks.inc();
  metrics.queue_depth.add(1);
  queue_has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  sp::MutexLock lock(mutex_);
  while (pending_ != 0) all_done_.wait(lock);
}

std::size_t ThreadPool::queue_depth() const {
  const sp::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::in_flight() const {
  const sp::MutexLock lock(mutex_);
  return pending_ - queue_.size();
}

void ThreadPool::worker_loop() {
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    QueuedTask item;
    {
      sp::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) queue_has_work_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    metrics.queue_depth.sub(1);
    metrics.in_flight.add(1);
    queue_has_space_.notify_one();
    {
      obs::TraceSpan span(metrics.task_ms);
      if (item.ctx.sampled()) {
        // Queue wait as its own span (enqueue → pop), then the execution
        // span, installed as this thread's context so work inside the task
        // nests under it.
        obs::Span wait(item.ctx, "pool.wait", item.enqueue_ns);
        wait.end();
        obs::Span exec(item.ctx, "pool.task");
        const obs::ContextGuard guard(exec.context());
        item.fn();
        // item.fn is destroyed at the end of this loop iteration, i.e. after
        // exec has ended — access_parallel relies on that order: its request
        // root lives inside the callable and must end after pool.task.
      } else {
        item.fn();
      }
    }
    metrics.in_flight.sub(1);
    {
      const sp::MutexLock lock(mutex_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sp::core
