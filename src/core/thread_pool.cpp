#include "core/thread_pool.hpp"

namespace sp::core {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_has_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_has_space_.wait(lock, [this] { return queue_.size() < queue_capacity_ || stopping_; });
    if (stopping_) return;  // racing a destructor: drop the task
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  queue_has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_has_work_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_has_space_.notify_one();
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sp::core
