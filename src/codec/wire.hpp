// Canonical wire primitives for the durable SP/DH storage layer (ROADMAP
// item 1). Everything that crosses a process boundary — WAL records, segment
// files, protocol objects at rest — is built from these three pieces:
//
//  * little-endian fixed-width integers (the paper's deployment targets are
//    all LE; spelling the byte order out keeps files portable anyway);
//  * length-prefixed byte fields (u32 LE length, then the bytes) — no
//    delimiters, no escaping, no text;
//  * a fixed frame around every record: magic, a format-version byte, a
//    record-type byte, the payload length, and a CRC32C trailer covering
//    version + type + length + payload.
//
// The CRC is Castagnoli (CRC-32C, the iSCSI/ext4 polynomial), chosen over
// plain CRC-32 for its better burst-error detection; the implementation is
// a portable slice-by-8 table walk, no SSE4.2 dependency.
//
// Error model: every decode failure throws CodecError (an
// std::invalid_argument), so callers distinguish "bytes are not a valid
// record" from genuine logic errors. Decoders never read past the input
// span and reject trailing garbage.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "crypto/bytes.hpp"

namespace sp::codec {

using crypto::Bytes;

/// Thrown for every malformed-input condition: truncation, bad magic,
/// unsupported version, CRC mismatch, trailing bytes, oversized fields.
class CodecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Current wire format version. Bumped when a record layout changes;
/// decoders accept exactly the versions they know (docs/WIRE_FORMAT.md has
/// the negotiation rules).
inline constexpr std::uint8_t kWireVersion = 1;

/// CRC-32C (Castagnoli) of `data`, optionally chained from a previous crc.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc = 0);

// ---------------------------------------------------------------- writer

/// Appends canonical little-endian fields to a growing byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-width fields only).
  void bytes(std::span<const std::uint8_t> data);
  /// u32 LE length prefix + bytes. Rejects fields over kMaxFieldBytes.
  void blob(std::span<const std::uint8_t> data);
  void str(std::string_view s);

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] Bytes take() { return std::move(out_); }
  [[nodiscard]] const Bytes& view() const { return out_; }

  /// Upper bound on a single length-prefixed field — large enough for any
  /// protocol object, small enough that a corrupted length can never drive
  /// a multi-gigabyte allocation.
  static constexpr std::size_t kMaxFieldBytes = 256u << 20;  // 256 MiB

 private:
  Bytes out_;
};

// ---------------------------------------------------------------- reader

/// Consumes canonical little-endian fields from a span; throws CodecError on
/// truncation or malformed lengths. Never reads past the input.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// `n` raw bytes (fixed-width field).
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);
  /// Length-prefixed field as a subspan of the input (zero-copy).
  [[nodiscard]] std::span<const std::uint8_t> blob_view();
  /// Length-prefixed field, copied out.
  [[nodiscard]] Bytes blob();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - off_; }
  /// Decoders call this last: trailing bytes mean the input is not the
  /// canonical encoding of anything.
  void expect_done(const char* what) const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------- framing

/// Frame layout (offsets in bytes, integers LE):
///   0   4  magic "SPR1"
///   4   1  format version
///   5   1  record type
///   6   4  payload length N
///  10   N  payload
///  10+N 4  CRC32C over bytes [4, 10+N)
inline constexpr std::array<std::uint8_t, 4> kFrameMagic = {'S', 'P', 'R', '1'};
inline constexpr std::size_t kFrameOverhead = 14;

struct Frame {
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::span<const std::uint8_t> payload;
};

/// Wraps `payload` in a frame of the given record type (current version).
[[nodiscard]] Bytes frame(std::uint8_t type, std::span<const std::uint8_t> payload,
                          std::uint8_t version = kWireVersion);

/// Parses exactly one frame spanning the whole input; throws CodecError on
/// any mismatch (magic, version range, length, CRC, trailing bytes).
[[nodiscard]] Frame unframe(std::span<const std::uint8_t> data);

/// Streaming variant for log replay: attempts to parse one frame starting at
/// `off`. On success advances `off` past the frame and returns it; returns
/// nullopt — without advancing — when the bytes at `off` are truncated or
/// corrupt (a torn tail). `off == data.size()` is a clean end.
[[nodiscard]] std::optional<Frame> try_unframe_prefix(std::span<const std::uint8_t> data,
                                                      std::size_t& off);

}  // namespace sp::codec
