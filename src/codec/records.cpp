#include "codec/records.hpp"

namespace sp::codec {

namespace {

/// Depth bound for access-tree decoding: social puzzles use height-1 trees
/// and BSW07 policies stay shallow; a hostile length field must not be able
/// to drive unbounded recursion.
constexpr std::size_t kMaxTreeDepth = 64;
/// Fan-out bound per node — far above any real policy, far below anything
/// that could amplify a small input into a huge allocation.
constexpr std::size_t kMaxTreeChildren = 1u << 20;

Frame checked_unframe(std::span<const std::uint8_t> data, RecordType want, const char* what) {
  const Frame f = unframe(data);
  if (f.version != kWireVersion) throw CodecError(std::string(what) + ": unsupported version");
  if (f.type != static_cast<std::uint8_t>(want)) {
    throw CodecError(std::string(what) + ": wrong record type");
  }
  return f;
}

void write_tree_node(Writer& w, const abe::AccessTree::Node& node) {
  w.u32(static_cast<std::uint32_t>(node.threshold));
  if (node.is_leaf()) {
    w.u8(1);
    w.str(node.leaf->question);
    w.str(node.leaf->answer);
    w.u8(node.leaf->perturbed ? 1 : 0);
    return;
  }
  w.u8(0);
  if (node.children.size() > kMaxTreeChildren) throw CodecError("access tree: fan-out too large");
  w.u32(static_cast<std::uint32_t>(node.children.size()));
  for (const auto& child : node.children) write_tree_node(w, child);
}

abe::AccessTree::Node read_tree_node(Reader& r, std::size_t depth) {
  if (depth > kMaxTreeDepth) throw CodecError("access tree: too deep");
  abe::AccessTree::Node node;
  node.threshold = r.u32();
  const std::uint8_t is_leaf = r.u8();
  if (is_leaf > 1) throw CodecError("access tree: bad leaf flag");
  if (is_leaf == 1) {
    abe::LeafAttribute leaf;
    leaf.question = r.str();
    leaf.answer = r.str();
    const std::uint8_t perturbed = r.u8();
    if (perturbed > 1) throw CodecError("access tree: bad perturbed flag");
    leaf.perturbed = perturbed == 1;
    node.leaf = std::move(leaf);
    return node;
  }
  const std::uint32_t children = r.u32();
  if (children > kMaxTreeChildren) throw CodecError("access tree: fan-out too large");
  // A child costs >= 9 bytes on the wire; an inflated count cannot reserve
  // more memory than the input could actually contain.
  if (std::size_t{children} * 9 > r.remaining()) throw CodecError("access tree: truncated");
  node.children.reserve(children);
  for (std::uint32_t i = 0; i < children; ++i) {
    node.children.push_back(read_tree_node(r, depth + 1));
  }
  return node;
}

void write_tree_payload(Writer& w, const abe::AccessTree& tree) {
  write_tree_node(w, tree.root());
}

abe::AccessTree read_tree_payload(Reader& r) {
  // AccessTree(Node) revalidates thresholds/fan-out, so a decoded tree obeys
  // the same invariants as a constructed one.
  return abe::AccessTree(read_tree_node(r, 0));
}

}  // namespace

// ------------------------------------------------------------- envelopes

Bytes encode_envelope(const Envelope& env) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(env.op));
  w.u8(env.space);
  w.u64(env.seq);
  w.str(env.id);
  w.blob(env.value);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kEnvelope), payload);
}

Envelope decode_envelope_payload(const Frame& f) {
  if (f.version != kWireVersion) throw CodecError("envelope: unsupported version");
  if (f.type != static_cast<std::uint8_t>(RecordType::kEnvelope)) {
    throw CodecError("envelope: wrong record type");
  }
  Reader r(f.payload);
  Envelope env;
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 3) throw CodecError("envelope: bad op");
  env.op = static_cast<Envelope::Op>(op);
  env.space = r.u8();
  env.seq = r.u64();
  env.id = r.str();
  env.value = r.blob();
  r.expect_done("envelope");
  return env;
}

Envelope decode_envelope(std::span<const std::uint8_t> data) {
  const Frame f = unframe(data);
  return decode_envelope_payload(f);
}

// ------------------------------------------------------- protocol objects

Bytes encode_c1_puzzle(const core::Puzzle& puzzle) {
  Writer w;
  w.str(puzzle.url);
  w.u64(puzzle.threshold);
  w.blob(puzzle.puzzle_key);
  w.u32(static_cast<std::uint32_t>(puzzle.entries.size()));
  for (const core::PuzzleEntry& e : puzzle.entries) {
    w.str(e.question);
    w.blob(e.answer_hash);
    w.blob(e.blinded_share);
  }
  w.blob(puzzle.sharer_public_key);
  w.blob(puzzle.signature);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kC1Puzzle), payload);
}

core::Puzzle decode_c1_puzzle(std::span<const std::uint8_t> data) {
  const Frame f = checked_unframe(data, RecordType::kC1Puzzle, "c1 puzzle");
  Reader r(f.payload);
  core::Puzzle p;
  p.url = r.str();
  p.threshold = r.u64();
  p.puzzle_key = r.blob();
  const std::uint32_t n = r.u32();
  // Each entry costs >= 12 bytes of length prefixes alone.
  if (std::size_t{n} * 12 > r.remaining()) throw CodecError("c1 puzzle: truncated entries");
  p.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    core::PuzzleEntry e;
    e.question = r.str();
    e.answer_hash = r.blob();
    e.blinded_share = r.blob();
    p.entries.push_back(std::move(e));
  }
  p.sharer_public_key = r.blob();
  p.signature = r.blob();
  r.expect_done("c1 puzzle");
  return p;
}

Bytes encode_access_tree(const abe::AccessTree& tree) {
  Writer w;
  write_tree_payload(w, tree);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kAccessTree), payload);
}

abe::AccessTree decode_access_tree(std::span<const std::uint8_t> data) {
  const Frame f = checked_unframe(data, RecordType::kAccessTree, "access tree");
  Reader r(f.payload);
  abe::AccessTree tree = read_tree_payload(r);
  r.expect_done("access tree");
  return tree;
}

Bytes encode_c2_file_set(const core::Construction2::UploadResult& files) {
  Writer w;
  w.u64(files.threshold);
  {
    Writer tree_writer;
    write_tree_payload(tree_writer, files.perturbed_tree);
    const Bytes tree_payload = tree_writer.take();
    w.blob(tree_payload);
  }
  w.blob(files.public_key);
  w.blob(files.master_key);
  w.blob(files.ciphertext);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kC2FileSet), payload);
}

core::Construction2::UploadResult decode_c2_file_set(std::span<const std::uint8_t> data) {
  const Frame f = checked_unframe(data, RecordType::kC2FileSet, "c2 file set");
  Reader r(f.payload);
  core::Construction2::UploadResult files;
  files.threshold = r.u64();
  {
    Reader tree_reader(r.blob_view());
    files.perturbed_tree = read_tree_payload(tree_reader);
    tree_reader.expect_done("c2 file set tree");
  }
  files.public_key = r.blob();
  files.master_key = r.blob();
  files.ciphertext = r.blob();
  r.expect_done("c2 file set");
  return files;
}

Bytes encode_observation(std::string_view channel, std::span<const std::uint8_t> data) {
  Writer w;
  w.str(channel);
  w.blob(data);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kObservation), payload);
}

ObservationRecord decode_observation(std::span<const std::uint8_t> data) {
  const Frame f = checked_unframe(data, RecordType::kObservation, "observation");
  Reader r(f.payload);
  ObservationRecord rec;
  rec.channel = r.str();
  rec.data = r.blob();
  r.expect_done("observation");
  return rec;
}

Bytes encode_dh_blob(std::string_view url, std::span<const std::uint8_t> blob) {
  Writer w;
  w.str(url);
  w.blob(blob);
  const Bytes payload = w.take();
  return frame(static_cast<std::uint8_t>(RecordType::kDhBlob), payload);
}

DhBlobRecord decode_dh_blob(std::span<const std::uint8_t> data) {
  const Frame f = checked_unframe(data, RecordType::kDhBlob, "dh blob");
  Reader r(f.payload);
  DhBlobRecord rec;
  rec.url = r.str();
  rec.blob = r.blob();
  r.expect_done("dh blob");
  return rec;
}

}  // namespace sp::codec
