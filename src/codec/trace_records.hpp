// Binary trace-dump codec (RecordType::kTraceSpan, docs/WIRE_FORMAT.md).
//
// A dump is a plain concatenation of one frame per span — the same
// stream-of-frames shape as the WAL, so sp_trace can recover the intact
// prefix of a truncated dump with try_unframe_prefix instead of losing the
// whole file to one torn tail. Trace membership is encoded per span (the
// 128-bit trace id leads every payload); the decoder regroups spans into
// TraceData, re-deriving the root fields, so a dump round-trips through
// encode/decode back to equal span sets.
//
// This lives in codec (not obs) to keep the dependency arrow pointing one
// way: codec → obs is fine, obs → codec would cycle through abe/ec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/wire.hpp"
#include "obs/trace.hpp"

namespace sp::codec {

/// One span of trace `id` as a complete frame.
[[nodiscard]] Bytes encode_trace_span(const obs::TraceId& id, const obs::SpanRecord& span);

/// Decodes exactly one kTraceSpan frame spanning the whole input.
/// Returns the owning trace id + the span; throws CodecError on mismatch.
struct DecodedTraceSpan {
  obs::TraceId trace;
  obs::SpanRecord span;
};
[[nodiscard]] DecodedTraceSpan decode_trace_span(std::span<const std::uint8_t> data);

/// Frames every span of every trace, in order — the .sptrace dump format.
[[nodiscard]] Bytes encode_trace_dump(std::span<const obs::TraceData> traces);

/// Parses a dump back into traces (grouped by id, first-appearance order;
/// root_name/duration/errored re-derived from the spans). Stops cleanly at
/// a torn tail like WAL replay; throws CodecError only when a structurally
/// valid frame has the wrong type or a malformed payload.
[[nodiscard]] std::vector<obs::TraceData> decode_trace_dump(std::span<const std::uint8_t> data);

}  // namespace sp::codec
