#include "codec/trace_records.hpp"

#include <unordered_map>
#include <utility>

#include "codec/records.hpp"

namespace sp::codec {

namespace {

constexpr std::uint8_t kType = static_cast<std::uint8_t>(RecordType::kTraceSpan);

// Span payload layout (docs/WIRE_FORMAT.md "Trace span"):
//   u64 trace_hi, u64 trace_lo
//   u64 span_id,  u64 parent_id (0 = root)
//   str name
//   u64 start_ns, u64 end_ns, u32 thread, u8 status
//   u16 n_attrs,  n × (str key, str value)
//   u16 n_links,  n × (u64 hi, u64 lo, u64 span)

Bytes span_payload(const obs::TraceId& id, const obs::SpanRecord& span) {
  Writer w;
  w.u64(id.hi);
  w.u64(id.lo);
  w.u64(span.span_id);
  w.u64(span.parent_id);
  w.str(span.name);
  w.u64(span.start_ns);
  w.u64(span.end_ns);
  w.u32(span.thread);
  w.u8(static_cast<std::uint8_t>(span.status));
  if (span.attrs.size() > 0xffff || span.links.size() > 0xffff) {
    throw CodecError("trace span: too many attrs/links");
  }
  w.u16(static_cast<std::uint16_t>(span.attrs.size()));
  for (const auto& [key, value] : span.attrs) {
    w.str(key);
    w.str(value);
  }
  w.u16(static_cast<std::uint16_t>(span.links.size()));
  for (const obs::SpanLink& link : span.links) {
    w.u64(link.trace.hi);
    w.u64(link.trace.lo);
    w.u64(link.span);
  }
  return w.take();
}

DecodedTraceSpan span_from_payload(const Frame& f) {
  if (f.type != kType) throw CodecError("trace span: wrong record type");
  Reader r(f.payload);
  DecodedTraceSpan out;
  out.trace.hi = r.u64();
  out.trace.lo = r.u64();
  out.span.span_id = r.u64();
  out.span.parent_id = r.u64();
  out.span.name = r.str();
  out.span.start_ns = r.u64();
  out.span.end_ns = r.u64();
  out.span.thread = r.u32();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(obs::SpanStatus::kTerminal)) {
    throw CodecError("trace span: unknown status");
  }
  out.span.status = static_cast<obs::SpanStatus>(status);
  const std::uint16_t n_attrs = r.u16();
  out.span.attrs.reserve(n_attrs);
  for (std::uint16_t i = 0; i < n_attrs; ++i) {
    std::string name = r.str();
    std::string value = r.str();
    out.span.attrs.emplace_back(std::move(name), std::move(value));
  }
  const std::uint16_t n_links = r.u16();
  out.span.links.reserve(n_links);
  for (std::uint16_t i = 0; i < n_links; ++i) {
    obs::SpanLink link;
    link.trace.hi = r.u64();
    link.trace.lo = r.u64();
    link.span = r.u64();
    out.span.links.push_back(link);
  }
  r.expect_done("trace span");
  return out;
}

struct IdHash {
  std::size_t operator()(const obs::TraceId& id) const {
    return static_cast<std::size_t>(id.hi ^ (id.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace

Bytes encode_trace_span(const obs::TraceId& id, const obs::SpanRecord& span) {
  return frame(kType, span_payload(id, span));
}

DecodedTraceSpan decode_trace_span(std::span<const std::uint8_t> data) {
  return span_from_payload(unframe(data));
}

Bytes encode_trace_dump(std::span<const obs::TraceData> traces) {
  Bytes out;
  for (const obs::TraceData& trace : traces) {
    for (const obs::SpanRecord& span : trace.spans) {
      const Bytes framed = encode_trace_span(trace.id, span);
      out.insert(out.end(), framed.begin(), framed.end());
    }
  }
  return out;
}

std::vector<obs::TraceData> decode_trace_dump(std::span<const std::uint8_t> data) {
  std::vector<obs::TraceData> traces;
  std::unordered_map<obs::TraceId, std::size_t, IdHash> index;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::optional<Frame> f = try_unframe_prefix(data, off);
    if (!f.has_value()) break;  // torn tail — keep the intact prefix
    DecodedTraceSpan decoded = span_from_payload(*f);
    auto [it, inserted] = index.try_emplace(decoded.trace, traces.size());
    if (inserted) {
      traces.emplace_back();
      traces.back().id = decoded.trace;
    }
    obs::TraceData& trace = traces[it->second];
    if (decoded.span.status != obs::SpanStatus::kOk) trace.errored = true;
    if (decoded.span.parent_id == 0) {
      trace.root_name = decoded.span.name;
      trace.duration_ms = decoded.span.duration_ms();
    }
    trace.spans.push_back(std::move(decoded.span));
  }
  return traces;
}

}  // namespace sp::codec
