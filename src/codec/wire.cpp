#include "codec/wire.hpp"

namespace sp::codec {

namespace {

/// Slice-by-8 CRC-32C tables, built once at first use. Table 0 is the plain
/// bitwise table; table k folds k extra bytes per step.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const Crc32cTables& crc_tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  const auto& t = crc_tables().t;
  crc = ~crc;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint32_t low = crc ^ (std::uint32_t{data[i]} | (std::uint32_t{data[i + 1]} << 8) |
                                     (std::uint32_t{data[i + 2]} << 16) |
                                     (std::uint32_t{data[i + 3]} << 24));
    crc = t[7][low & 0xffu] ^ t[6][(low >> 8) & 0xffu] ^ t[5][(low >> 16) & 0xffu] ^
          t[4][low >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^ t[1][data[i + 6]] ^
          t[0][data[i + 7]];
  }
  for (; i < data.size(); ++i) crc = (crc >> 8) ^ t[0][(crc ^ data[i]) & 0xffu];
  return ~crc;
}

// ---------------------------------------------------------------- writer

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::blob(std::span<const std::uint8_t> data) {
  if (data.size() > kMaxFieldBytes) throw CodecError("codec: field exceeds kMaxFieldBytes");
  u32(static_cast<std::uint32_t>(data.size()));
  bytes(data);
}

void Writer::str(std::string_view s) {
  blob(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

// ---------------------------------------------------------------- reader

std::uint8_t Reader::u8() {
  if (remaining() < 1) throw CodecError("codec: truncated u8");
  return data_[off_++];
}

std::uint16_t Reader::u16() {
  if (remaining() < 2) throw CodecError("codec: truncated u16");
  const std::uint16_t v = static_cast<std::uint16_t>(std::uint16_t{data_[off_]} |
                                                     (std::uint16_t{data_[off_ + 1]} << 8));
  off_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (remaining() < 4) throw CodecError("codec: truncated u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[off_ + static_cast<std::size_t>(i)];
  off_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (remaining() < 8) throw CodecError("codec: truncated u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[off_ + static_cast<std::size_t>(i)];
  off_ += 8;
  return v;
}

std::span<const std::uint8_t> Reader::bytes(std::size_t n) {
  if (remaining() < n) throw CodecError("codec: truncated bytes");
  const auto out = data_.subspan(off_, n);
  off_ += n;
  return out;
}

std::span<const std::uint8_t> Reader::blob_view() {
  const std::uint32_t len = u32();
  if (len > Writer::kMaxFieldBytes) throw CodecError("codec: field length exceeds limit");
  return bytes(len);
}

Bytes Reader::blob() {
  const auto view = blob_view();
  return Bytes(view.begin(), view.end());
}

std::string Reader::str() {
  const auto view = blob_view();
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

void Reader::expect_done(const char* what) const {
  if (off_ != data_.size()) throw CodecError(std::string(what) + ": trailing bytes");
}

// ---------------------------------------------------------------- framing

Bytes frame(std::uint8_t type, std::span<const std::uint8_t> payload, std::uint8_t version) {
  if (payload.size() > Writer::kMaxFieldBytes) throw CodecError("codec: payload exceeds limit");
  Writer w;
  w.bytes(kFrameMagic);
  w.u8(version);
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  Bytes out = w.take();
  const std::uint32_t crc = crc32c(std::span(out).subspan(kFrameMagic.size()));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  return out;
}

namespace {

/// Shared frame parse; `strict` throws CodecError with a reason, non-strict
/// returns nullopt (replay's torn-tail handling).
std::optional<Frame> parse_frame(std::span<const std::uint8_t> data, std::size_t off,
                                 std::size_t& end, bool strict) {
  const auto fail = [strict](const char* why) -> std::optional<Frame> {
    if (strict) throw CodecError(why);
    return std::nullopt;
  };
  if (data.size() - off < kFrameOverhead) return fail("codec: truncated frame header");
  for (std::size_t i = 0; i < kFrameMagic.size(); ++i) {
    if (data[off + i] != kFrameMagic[i]) return fail("codec: bad frame magic");
  }
  Frame f;
  f.version = data[off + 4];
  f.type = data[off + 5];
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | data[off + 6 + static_cast<std::size_t>(i)];
  if (len > Writer::kMaxFieldBytes) return fail("codec: frame payload exceeds limit");
  if (data.size() - off < kFrameOverhead + len) return fail("codec: truncated frame payload");
  f.payload = data.subspan(off + 10, len);
  const std::uint32_t want = crc32c(data.subspan(off + 4, 6 + len));
  std::uint32_t got = 0;
  for (int i = 3; i >= 0; --i) {
    got = (got << 8) | data[off + 10 + len + static_cast<std::size_t>(i)];
  }
  if (want != got) return fail("codec: frame CRC mismatch");
  end = off + kFrameOverhead + len;
  return f;
}

}  // namespace

Frame unframe(std::span<const std::uint8_t> data) {
  std::size_t end = 0;
  const auto f = parse_frame(data, 0, end, /*strict=*/true);
  if (end != data.size()) throw CodecError("codec: trailing bytes after frame");
  return *f;
}

std::optional<Frame> try_unframe_prefix(std::span<const std::uint8_t> data, std::size_t& off) {
  if (off >= data.size()) return std::nullopt;
  std::size_t end = 0;
  const auto f = parse_frame(data, off, end, /*strict=*/false);
  if (!f) return std::nullopt;
  off = end;
  return f;
}

}  // namespace sp::codec
