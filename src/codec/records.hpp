// Versioned codecs for the protocol objects the SP and DH persist (ROADMAP
// item 1, docs/WIRE_FORMAT.md has the field-by-field layouts):
//
//  * Construction 1 puzzle records Z_O (core::Puzzle);
//  * Construction 2 file sets — τ' access tree, PK, MK, ciphertext, k
//    (core::Construction2::UploadResult);
//  * SP observation-log entries (channel + data);
//  * DH blobs (URL + ciphertext);
//  * ShardedStore record envelopes — the WAL's unit of replay: an operation
//    (put / erase / observe), a keyspace, a sequence number for id-counter
//    recovery, the record id and the value bytes.
//
// Every encoder emits one complete frame (codec/wire.hpp): magic, version,
// record type, length, payload, CRC32C. Every decoder validates the frame,
// checks the record type, and rejects trailing bytes — so a decoded object
// re-encodes byte-identically (the round-trip property tests pin this).
//
// Codecs live below sp::core in the link order: this library uses the core
// structs header-only (plain aggregates) and links only sp_crypto + sp_abe,
// so sp_storage and sp_osn can depend on it without a cycle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "abe/access_tree.hpp"
#include "codec/wire.hpp"
#include "core/construction2.hpp"
#include "core/puzzle.hpp"
#include "crypto/bytes.hpp"

namespace sp::codec {

/// Frame record-type byte. Values are wire constants: never renumber, only
/// append (docs/WIRE_FORMAT.md).
enum class RecordType : std::uint8_t {
  kEnvelope = 1,     ///< ShardedStore record envelope (WAL unit)
  kC1Puzzle = 2,     ///< Construction 1 Z_O
  kC2FileSet = 3,    ///< Construction 2 {τ', PK, MK, CT', k}
  kObservation = 4,  ///< SP observation-log entry
  kDhBlob = 5,       ///< DH object at rest
  kSegment = 6,      ///< segment-file body (src/storage/segment.cpp)
  kAccessTree = 7,   ///< standalone τ/τ' (rides inside kC2FileSet too)
  kTraceSpan = 8,    ///< one trace span (codec/trace_records.hpp)
};

// ------------------------------------------------------------- envelopes

/// One durable mutation of a ShardedStore-backed host. `seq` carries the
/// host's id counter at issue time (0 when not applicable) so recovery can
/// restore monotonic id issuance without replaying ids from content.
struct Envelope {
  enum class Op : std::uint8_t {
    kPut = 1,      ///< insert or overwrite `id` with `value`
    kErase = 2,    ///< remove `id`
    kObserve = 3,  ///< append to the observation log (id = channel)
  };

  Op op = Op::kPut;
  std::uint8_t space = 0;  ///< host-defined keyspace (records / observations / blobs)
  std::uint64_t seq = 0;
  std::string id;
  Bytes value;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

[[nodiscard]] Bytes encode_envelope(const Envelope& env);
[[nodiscard]] Envelope decode_envelope(std::span<const std::uint8_t> data);
/// Payload-level decoder for frames already parsed out of a log stream.
[[nodiscard]] Envelope decode_envelope_payload(const Frame& f);

// ------------------------------------------------------- protocol objects

[[nodiscard]] Bytes encode_c1_puzzle(const core::Puzzle& puzzle);
[[nodiscard]] core::Puzzle decode_c1_puzzle(std::span<const std::uint8_t> data);

[[nodiscard]] Bytes encode_access_tree(const abe::AccessTree& tree);
[[nodiscard]] abe::AccessTree decode_access_tree(std::span<const std::uint8_t> data);

[[nodiscard]] Bytes encode_c2_file_set(const core::Construction2::UploadResult& files);
[[nodiscard]] core::Construction2::UploadResult decode_c2_file_set(
    std::span<const std::uint8_t> data);

struct ObservationRecord {
  std::string channel;
  Bytes data;

  friend bool operator==(const ObservationRecord&, const ObservationRecord&) = default;
};
[[nodiscard]] Bytes encode_observation(std::string_view channel,
                                       std::span<const std::uint8_t> data);
[[nodiscard]] ObservationRecord decode_observation(std::span<const std::uint8_t> data);

struct DhBlobRecord {
  std::string url;
  Bytes blob;

  friend bool operator==(const DhBlobRecord&, const DhBlobRecord&) = default;
};
[[nodiscard]] Bytes encode_dh_blob(std::string_view url, std::span<const std::uint8_t> blob);
[[nodiscard]] DhBlobRecord decode_dh_blob(std::span<const std::uint8_t> data);

}  // namespace sp::codec
