// Schnorr signatures over the pairing curve's order-q subgroup.
//
// Paper §VI: a malicious SP can mount denial-of-service by tampering with
// URL_O, the puzzle questions, or K_Z; the proposed countermeasure is for
// the sharer to sign those fields so receivers detect modification. This
// module provides that signature scheme. Nonces are derived
// deterministically (RFC 6979 style, via HMAC) so signing needs no RNG.
#pragma once

#include "ec/curve.hpp"

namespace sp::sig {

using crypto::BigInt;
using crypto::Bytes;

struct KeyPair {
  BigInt secret;          ///< x ∈ Z_q
  ec::Point public_key;   ///< g^x
};

struct Signature {
  ec::Point r;  ///< commitment g^k
  BigInt s;     ///< response k + e·x (mod q)
};

class Schnorr {
 public:
  /// `generator` must be a fixed public generator of the order-q subgroup
  /// (conventionally Curve::hash_to_group("sp-schnorr-g")).
  Schnorr(const ec::Curve& curve, ec::Point generator);

  [[nodiscard]] KeyPair keygen(crypto::Drbg& rng) const;
  [[nodiscard]] Signature sign(const KeyPair& kp, std::span<const std::uint8_t> msg) const;
  [[nodiscard]] bool verify(const ec::Point& public_key, std::span<const std::uint8_t> msg,
                            const Signature& sig) const;

  /// Wire encodings (signature travels inside puzzle records).
  [[nodiscard]] Bytes serialize(const Signature& sig) const;
  [[nodiscard]] Signature deserialize(std::span<const std::uint8_t> data) const;
  [[nodiscard]] Bytes serialize_public(const ec::Point& pk) const;
  [[nodiscard]] ec::Point deserialize_public(std::span<const std::uint8_t> data) const;

  [[nodiscard]] const ec::Point& generator() const { return g_; }

 private:
  [[nodiscard]] BigInt challenge(const ec::Point& r, const ec::Point& pk,
                                 std::span<const std::uint8_t> msg) const;

  const ec::Curve* curve_;
  ec::Point g_;
};

}  // namespace sp::sig
