#include "sig/schnorr.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"

namespace sp::sig {

Schnorr::Schnorr(const ec::Curve& curve, ec::Point generator)
    : curve_(&curve), g_(std::move(generator)) {
  if (g_.is_infinity() || !curve_->on_curve(g_)) {
    throw std::invalid_argument("Schnorr: bad generator");
  }
  // Every keygen/sign/verify exponentiates g_; the process-wide window
  // table makes those fixed-base multiplications.
  curve_->precompute_fixed_base(g_);
}

KeyPair Schnorr::keygen(crypto::Drbg& rng) const {
  auto rb = [&rng](std::size_t n) { return rng.bytes(n); };
  BigInt x = BigInt::random_below(curve_->order() - BigInt{1}, rb) + BigInt{1};
  return KeyPair{x, curve_->mul(g_, x)};
}

BigInt Schnorr::challenge(const ec::Point& r, const ec::Point& pk,
                          std::span<const std::uint8_t> msg) const {
  crypto::Sha256 h;
  h.update(curve_->serialize(r));
  h.update(curve_->serialize(pk));
  h.update(msg);
  auto digest = h.finish();
  return BigInt::from_bytes(digest).mod(curve_->order());
}

Signature Schnorr::sign(const KeyPair& kp, std::span<const std::uint8_t> msg) const {
  // Deterministic nonce: k = HMAC(sk, msg) expanded until < q (never reuse a
  // nonce across distinct messages — the classic Schnorr key-recovery trap).
  const crypto::SecretBytes sk_bytes{kp.secret.to_bytes(curve_->fp()->byte_length())};
  Bytes stretch = crypto::hmac_sha256(sk_bytes.span(), msg);
  BigInt k;
  for (std::uint8_t ctr = 0;; ++ctr) {
    Bytes salted = stretch;
    salted.push_back(ctr);
    Bytes wide = crypto::hmac_sha256(sk_bytes.span(), salted);
    Bytes wide2 = crypto::hmac_sha256(sk_bytes.span(), wide);
    wide.insert(wide.end(), wide2.begin(), wide2.end());
    k = BigInt::from_bytes(wide).mod(curve_->order());
    crypto::secure_wipe(salted);
    crypto::secure_wipe(wide);
    crypto::secure_wipe(wide2);
    if (!k.is_zero()) break;
  }
  crypto::secure_wipe(stretch);
  const ec::Point r = curve_->mul(g_, k);
  const BigInt e = challenge(r, kp.public_key, msg);
  const BigInt s = (k + e * kp.secret).mod(curve_->order());
  // A recovered nonce recovers the signing key: wipe it the moment s exists.
  k.wipe();
  return Signature{r, s};
}

bool Schnorr::verify(const ec::Point& public_key, std::span<const std::uint8_t> msg,
                     const Signature& sig) const {
  if (sig.r.is_infinity() || !curve_->on_curve(sig.r)) return false;
  if (public_key.is_infinity() || !curve_->on_curve(public_key)) return false;
  if (sig.s.is_negative() || sig.s >= curve_->order()) return false;
  const BigInt e = challenge(sig.r, public_key, msg);
  // g^s == R + e·pk
  const ec::Point lhs = curve_->mul(g_, sig.s);
  const ec::Point rhs = curve_->add(sig.r, curve_->mul(public_key, e));
  return lhs == rhs;
}

Bytes Schnorr::serialize(const Signature& sig) const {
  Bytes out = curve_->serialize(sig.r);
  Bytes s = sig.s.to_bytes(curve_->fp()->byte_length());
  out.insert(out.end(), s.begin(), s.end());
  return out;
}

Bytes Schnorr::serialize_public(const ec::Point& pk) const { return curve_->serialize(pk); }

ec::Point Schnorr::deserialize_public(std::span<const std::uint8_t> data) const {
  return curve_->deserialize(data);
}

Signature Schnorr::deserialize(std::span<const std::uint8_t> data) const {
  const std::size_t flen = curve_->fp()->byte_length();
  const std::size_t point_len = 1 + 2 * flen;
  if (data.size() != point_len + flen) {
    throw std::invalid_argument("Schnorr::deserialize: bad length");
  }
  Signature sig;
  sig.r = curve_->deserialize(data.first(point_len));
  sig.s = BigInt::from_bytes(data.subspan(point_len));
  return sig;
}

}  // namespace sp::sig
