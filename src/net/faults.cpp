#include "net/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/bytes.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace sp::net {

namespace {

/// Fault-layer instruments (docs/OBSERVABILITY.md catalog): process-wide
/// injected-fault totals across every FaultInjector, split by kind. The
/// chaos suite asserts these deltas equal the injector's own counters.
struct FaultMetrics {
  std::array<obs::Counter*, kFaultKindCount> injected;

  static FaultMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static FaultMetrics m{{
        &reg.counter("sp_faults_injected_total", "Injected faults by kind",
                     {{"kind", "transfer_timeout"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "latency_spike"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "sp_error"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "sp_partial_reply"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "dh_miss"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "dh_corrupt"}}),
        &reg.counter("sp_faults_injected_total", "", {{"kind", "crash"}}),
    }};
    return m;
  }
};

void update_hash(crypto::Sha256& h, std::string_view s) {
  h.update(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void update_hash_u64(crypto::Sha256& h, std::uint64_t v) {
  std::array<std::uint8_t, 8> le{};
  for (int i = 0; i < 8; ++i) le[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  h.update(le);
}

/// First 8 digest bytes (LE) mapped to [0, 1) with 53 bits of precision.
double digest_to_unit(const std::array<std::uint8_t, 32>& digest) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | digest[static_cast<std::size_t>(i)];
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

// Op-class tags for the per-stream PRF domain separation.
constexpr std::uint8_t kClassTransfer = 0;
constexpr std::uint8_t kClassSpError = 1;
constexpr std::uint8_t kClassSpPartial = 2;
constexpr std::uint8_t kClassDh = 3;
constexpr std::uint8_t kClassJitter = 4;
constexpr std::uint8_t kClassCrash = 5;

}  // namespace

// ---------------------------------------------------------------- errors

const char* to_string(ServeError err) {
  switch (err) {
    case ServeError::kTimeout: return "timeout";
    case ServeError::kSpUnavailable: return "sp_unavailable";
    case ServeError::kDhMiss: return "dh_miss";
    case ServeError::kCorruptedBlob: return "corrupted_blob";
    case ServeError::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

bool is_transient(ServeError err) {
  switch (err) {
    case ServeError::kTimeout:
    case ServeError::kSpUnavailable:
    case ServeError::kDhMiss:
    case ServeError::kCorruptedBlob:
      return true;
    case ServeError::kDeadlineExceeded:
      return false;
  }
  return false;
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransferTimeout: return "transfer_timeout";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kSpError: return "sp_error";
    case FaultKind::kSpPartialReply: return "sp_partial_reply";
    case FaultKind::kDhMiss: return "dh_miss";
    case FaultKind::kDhCorrupt: return "dh_corrupt";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

// ---------------------------------------------------------------- plan

FaultPlan FaultPlan::none() { return FaultPlan{}; }

FaultPlan FaultPlan::uniform(double rate, std::string schedule_seed) {
  if (rate < 0.0 || rate > 1.0) throw std::invalid_argument("FaultPlan::uniform: rate in [0,1]");
  FaultPlan plan;
  plan.p_transfer_timeout = rate;
  plan.p_latency_spike = rate;
  plan.p_sp_error = rate;
  plan.p_sp_partial = rate;
  plan.p_dh_miss = rate;
  plan.p_dh_corrupt = rate;
  plan.seed = std::move(schedule_seed);
  return plan;
}

// ---------------------------------------------------------------- stream

FaultStream::FaultStream(const FaultInjector* injector, std::array<std::uint8_t, 32> base,
                         bool record)
    : injector_(injector), base_(base), record_(record) {}

double FaultStream::unit(std::uint8_t op_class, std::uint64_t index) const {
  crypto::Sha256 h;
  h.update(base_);
  h.update(std::array<std::uint8_t, 1>{op_class});
  update_hash_u64(h, index);
  return digest_to_unit(h.finish());
}

FaultStream::TransferFault FaultStream::next_transfer() {
  const double u = unit(kClassTransfer, cursors_[kClassTransfer]++);
  const FaultPlan& plan = injector_->plan();
  TransferFault out;
  if (u < plan.p_transfer_timeout) {
    out.fault = ServeError::kTimeout;
    if (record_) injector_->record(FaultKind::kTransferTimeout);
  } else if (u < plan.p_transfer_timeout + plan.p_latency_spike) {
    out.extra_ms = plan.latency_spike_ms;
    if (record_) injector_->record(FaultKind::kLatencySpike);
  }
  return out;
}

bool FaultStream::next_sp_error() {
  const double u = unit(kClassSpError, cursors_[kClassSpError]++);
  if (u < injector_->plan().p_sp_error) {
    if (record_) injector_->record(FaultKind::kSpError);
    return true;
  }
  return false;
}

std::size_t FaultStream::next_sp_partial(std::size_t n_shares) {
  const double u = unit(kClassSpPartial, cursors_[kClassSpPartial]++);
  const FaultPlan& plan = injector_->plan();
  if (n_shares < 1 || u >= plan.p_sp_partial) return 0;
  const auto want = static_cast<std::size_t>(
      std::floor(static_cast<double>(n_shares) * plan.partial_drop_frac));
  const std::size_t drop = std::clamp<std::size_t>(want, 1, n_shares);
  if (record_) injector_->record(FaultKind::kSpPartialReply);
  return drop;
}

std::optional<ServeError> FaultStream::next_dh() {
  const double u = unit(kClassDh, cursors_[kClassDh]++);
  const FaultPlan& plan = injector_->plan();
  if (u < plan.p_dh_miss) {
    if (record_) injector_->record(FaultKind::kDhMiss);
    return ServeError::kDhMiss;
  }
  if (u < plan.p_dh_miss + plan.p_dh_corrupt) {
    if (record_) injector_->record(FaultKind::kDhCorrupt);
    return ServeError::kCorruptedBlob;
  }
  return std::nullopt;
}

bool FaultStream::next_crash() {
  const double u = unit(kClassCrash, cursors_[4]++);
  if (u < injector_->plan().p_crash) {
    if (record_) injector_->record(FaultKind::kCrash);
    return true;
  }
  return false;
}

double FaultStream::jitter_unit(std::uint64_t index) const { return unit(kClassJitter, index); }

// ---------------------------------------------------------------- injector

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const double p : {plan_.p_transfer_timeout, plan_.p_latency_spike, plan_.p_sp_error,
                         plan_.p_sp_partial, plan_.p_dh_miss, plan_.p_dh_corrupt, plan_.p_crash}) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("FaultPlan: probabilities in [0,1]");
  }
  if (plan_.p_dh_miss + plan_.p_dh_corrupt > 1.0) {
    throw std::invalid_argument("FaultPlan: p_dh_miss + p_dh_corrupt must not exceed 1");
  }
  if (plan_.p_transfer_timeout + plan_.p_latency_spike > 1.0) {
    throw std::invalid_argument("FaultPlan: p_transfer_timeout + p_latency_spike must not exceed 1");
  }
}

std::array<std::uint8_t, 32> FaultInjector::stream_base(std::string_view scope,
                                                        std::uint64_t ordinal) const {
  crypto::Sha256 h;
  update_hash(h, plan_.seed);
  h.update(std::array<std::uint8_t, 1>{0x1f});
  update_hash(h, scope);
  h.update(std::array<std::uint8_t, 1>{0x1f});
  update_hash_u64(h, ordinal);
  return h.finish();
}

FaultStream FaultInjector::stream(std::uint64_t receiver, std::string_view post_id) const {
  const std::string scope_id = std::to_string(receiver) + "\x1f" + std::string(post_id);
  std::uint64_t ordinal = 0;
  {
    const sp::MutexLock lock(ordinals_mutex_);
    ordinal = ordinals_[scope_id]++;
  }
  return FaultStream(this, stream_base(scope_id, ordinal));
}

FaultStream FaultInjector::stream_for_label(std::string_view label) const {
  const std::string scope_id = "label\x1f" + std::string(label);
  std::uint64_t ordinal = 0;
  {
    const sp::MutexLock lock(ordinals_mutex_);
    ordinal = ordinals_[scope_id]++;
  }
  return FaultStream(this, stream_base(scope_id, ordinal));
}

void FaultInjector::record(FaultKind kind) const {
  const auto i = static_cast<std::size_t>(kind);
  injected_[i].fetch_add(1, std::memory_order_relaxed);
  FaultMetrics::get().injected[i]->inc();
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::string FaultInjector::schedule_digest(std::string_view label, std::uint64_t streams,
                                           std::uint64_t ops) const {
  // Replays the schedule off to the side: a fresh FaultStream per request
  // ordinal (bypassing the shared ordinal map so the digest never perturbs
  // serving state), every op class, `ops` decisions each. Decisions — not
  // raw PRF output — are hashed, so the digest captures exactly what the
  // serving stack would observe.
  crypto::Sha256 acc;
  const std::string scope_id = "label\x1f" + std::string(label);
  for (std::uint64_t s = 0; s < streams; ++s) {
    FaultStream tape(this, stream_base(scope_id, s), /*record=*/false);
    for (std::uint64_t i = 0; i < ops; ++i) {
      const auto transfer = tape.next_transfer();
      const std::uint8_t transfer_code =
          transfer.fault ? 1 : (transfer.extra_ms > 0.0 ? 2 : 0);
      const std::uint8_t sp_code = tape.next_sp_error() ? 1 : 0;
      const std::uint8_t partial_code = tape.next_sp_partial(8) > 0 ? 1 : 0;
      const auto dh = tape.next_dh();
      const std::uint8_t dh_code = !dh ? 0 : (*dh == ServeError::kDhMiss ? 1 : 2);
      const std::uint8_t crash_code = tape.next_crash() ? 1 : 0;
      acc.update(
          std::array<std::uint8_t, 5>{transfer_code, sp_code, partial_code, dh_code, crash_code});
    }
  }
  const auto digest = acc.finish();
  return crypto::to_hex(digest);
}

// ---------------------------------------------------------------- retry

double RetryPolicy::backoff_ms(int retry_index, double jitter_unit) const {
  if (retry_index < 0) throw std::invalid_argument("RetryPolicy::backoff_ms: retry_index >= 0");
  double wait = base_backoff_ms;
  for (int i = 0; i < retry_index && wait < max_backoff_ms; ++i) wait *= backoff_factor;
  wait = std::min(wait, max_backoff_ms);
  return wait * (1.0 + jitter_frac * jitter_unit);
}

}  // namespace sp::net
