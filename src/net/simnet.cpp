#include "net/simnet.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace sp::net {

namespace {

/// Link-layer instruments: modeled transfer counts/bytes/delays across every
/// Network instance (docs/OBSERVABILITY.md catalog).
struct NetMetrics {
  obs::Counter& transfers;
  obs::Counter& bytes;
  obs::Histogram& transfer_ms;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("net_transfers_total", "Modeled request/response exchanges"),
        reg.counter("net_bytes_total", "Modeled payload bytes moved"),
        reg.histogram("net_transfer_ms", "Modeled per-exchange network delay"),
    };
    return m;
  }
};

}  // namespace

DeviceProfile pc_profile() { return DeviceProfile{"pc-quadcore-2.5ghz", 1.0}; }

DeviceProfile tablet_profile() { return DeviceProfile{"nexus7-tablet", 5.0}; }

LinkProfile wlan_80211n_to_ec2() {
  // Paper: 802.11n at 60 Mbps; EC2 path adds tens of ms RTT.
  return LinkProfile{"802.11n-60mbps-ec2", 60.0, 40.0, 8.0, 0.15};
}

LinkProfile loopback() { return LinkProfile{"loopback", 100000.0, 0.0, 0.0, 0.0}; }

double Network::transfer_ms(std::size_t bytes, int round_trips) const {
  if (round_trips < 1) throw std::invalid_argument("Network::transfer_ms: round_trips >= 1");
  const double payload_ms =
      (static_cast<double>(bytes) * 8.0) / (link_.bandwidth_mbps * 1000.0);
  const double base = payload_ms +
                      round_trips * (link_.rtt_ms + link_.per_request_overhead_ms);
  NetMetrics& metrics = NetMetrics::get();
  metrics.transfers.inc();
  metrics.bytes.inc(bytes);
  if (link_.jitter_frac <= 0.0) {
    metrics.transfer_ms.observe(base);
    return base;
  }
  // Uniform multiplicative jitter in [1, 1 + jitter_frac) — deterministic
  // given the seed, mirroring the paper's observed instability.
  double sample = 0.0;
  {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    sample = rng_.uniform_real();
  }
  const double factor = 1.0 + link_.jitter_frac * sample;
  metrics.transfer_ms.observe(base * factor);
  return base * factor;
}

}  // namespace sp::net
