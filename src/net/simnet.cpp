#include "net/simnet.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace sp::net {

namespace {

/// Link-layer instruments: modeled transfer counts/bytes/delays across every
/// Network instance (docs/OBSERVABILITY.md catalog).
struct NetMetrics {
  obs::Counter& transfers;
  obs::Counter& bytes;
  obs::Histogram& transfer_ms;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("net_transfers_total", "Modeled request/response exchanges"),
        reg.counter("net_bytes_total", "Modeled payload bytes moved"),
        reg.histogram("net_transfer_ms", "Modeled per-exchange network delay"),
    };
    return m;
  }
};

}  // namespace

DeviceProfile pc_profile() { return DeviceProfile{"pc-quadcore-2.5ghz", 1.0}; }

DeviceProfile tablet_profile() { return DeviceProfile{"nexus7-tablet", 5.0}; }

LinkProfile wlan_80211n_to_ec2() {
  // Paper: 802.11n at 60 Mbps; EC2 path adds tens of ms RTT.
  return LinkProfile{"802.11n-60mbps-ec2", 60.0, 40.0, 8.0, 0.15};
}

LinkProfile loopback() { return LinkProfile{"loopback", 100000.0, 0.0, 0.0, 0.0}; }

double Network::modeled_ms(std::size_t bytes, int round_trips) const {
  const double payload_ms =
      (static_cast<double>(bytes) * 8.0) / (link_.bandwidth_mbps * 1000.0);
  const double base = payload_ms +
                      round_trips * (link_.rtt_ms + link_.per_request_overhead_ms);
  if (link_.jitter_frac <= 0.0) return base;
  // Uniform multiplicative jitter in [1, 1 + jitter_frac) — deterministic
  // given the seed, mirroring the paper's observed instability.
  double sample = 0.0;
  {
    const sp::MutexLock lock(rng_mutex_);
    sample = rng_.uniform_real();
  }
  return base * (1.0 + link_.jitter_frac * sample);
}

double Network::transfer_ms(std::size_t bytes, int round_trips) const {
  if (round_trips < 1) throw std::invalid_argument("Network::transfer_ms: round_trips >= 1");
  const double delay = modeled_ms(bytes, round_trips);
  NetMetrics& metrics = NetMetrics::get();
  metrics.transfers.inc();
  metrics.bytes.inc(bytes);
  metrics.transfer_ms.observe(delay);
  return delay;
}

Expected<double> Network::try_transfer_ms(std::size_t bytes, int round_trips,
                                          FaultStream* faults) const {
  if (round_trips < 1) throw std::invalid_argument("Network::try_transfer_ms: round_trips >= 1");
  double extra_ms = 0.0;
  if (faults != nullptr) {
    const FaultStream::TransferFault fault = faults->next_transfer();
    // A timed-out exchange moves no payload and records no transfer: the
    // caller charges the wasted wait it chooses (typically the plan's
    // transfer_timeout_ms) to the ledger's wait bucket.
    if (fault.fault) return *fault.fault;
    extra_ms = fault.extra_ms;
  }
  const double delay = modeled_ms(bytes, round_trips) + extra_ms;
  NetMetrics& metrics = NetMetrics::get();
  metrics.transfers.inc();
  metrics.bytes.inc(bytes);
  metrics.transfer_ms.observe(delay);
  return delay;
}

}  // namespace sp::net
