// Deterministic fault injection for the serving stack.
//
// The paper measured its protocols on a real, flaky testbed and calls out
// "instability ... due to the unpredictability of the communication network
// speed"; related provider-mediated OSN designs treat provider and network
// failure as the common case. Until this layer existed, no transfer in the
// repo could fail — every error path in the serving core was dead code. This
// file makes failure a first-class, *replayable* input:
//
//  * `FaultPlan`    — per-op-class probabilities (transfer timeout, latency
//                     spike, transient SP error, partial SP reply, DH fetch
//                     miss, corrupted-blob delivery) plus a seed.
//  * `FaultInjector`— the process-wide schedule. Decisions are a pure
//                     function PRF(seed, request key, op class, op ordinal):
//                     no global RNG, no locks on the draw path, so the same
//                     seed always produces the same fault schedule.
//  * `FaultStream`  — one request's private view of the schedule. `Network`,
//                     `ServiceProvider` and `StorageHost` consult the stream
//                     the session threads through their hooks.
//  * `ServeError` / `Expected<T>` — explicit error results for the serving
//                     paths (no exceptions on the hot path).
//  * `RetryPolicy`  — max attempts, exponential backoff with seeded jitter,
//                     and an overall per-request deadline, used by
//                     Session::access_with_retries / access_parallel.
//
// Determinism contract (DESIGN.md "Fault model & retry semantics"): a
// request's fault outcomes depend only on (plan seed, receiver id, post id,
// the per-(receiver, post) request ordinal, and the request's own op order).
// Any workload in which each (receiver, post) request series is issued from
// one thread in program order is therefore byte-identical across runs — even
// when eight such series interleave on eight threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::net {

// ---------------------------------------------------------------- errors

/// Why a serving attempt failed. The transient kinds are retryable (a fresh
/// attempt may succeed); the terminal kinds are not.
enum class ServeError : std::uint8_t {
  kTimeout,           ///< a transfer timed out (transient)
  kSpUnavailable,     ///< transient SP error / reply too partial to serve
  kDhMiss,            ///< DH fetch failed: object unreachable or missing (transient)
  kCorruptedBlob,     ///< delivered blob failed authentication (transient)
  kDeadlineExceeded,  ///< retry budget exhausted against the deadline (terminal)
};

[[nodiscard]] const char* to_string(ServeError err);

/// Retry classification: retrying can help for network/provider blips, never
/// for an exceeded deadline.
[[nodiscard]] bool is_transient(ServeError err);

/// Minimal value-or-error result for the serving paths. Modeled on
/// std::expected (not available pre-C++23): either holds a T or a ServeError,
/// never both, never neither.
template <typename T, typename E = ServeError>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(E error) : state_(error) {}             // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & { return std::get<T>(state_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(state_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(state_)); }
  [[nodiscard]] E error() const { return std::get<E>(state_); }

 private:
  std::variant<T, E> state_;
};

// ---------------------------------------------------------------- plan

/// Injectable fault classes (metric label values; keep in sync with
/// to_string(FaultKind) and docs/OBSERVABILITY.md).
enum class FaultKind : std::uint8_t {
  kTransferTimeout = 0,
  kLatencySpike,
  kSpError,
  kSpPartialReply,
  kDhMiss,
  kDhCorrupt,
  kCrash,  ///< storage-writer kill point (WAL group commit, PR 8)
};
inline constexpr std::size_t kFaultKindCount = 7;

[[nodiscard]] const char* to_string(FaultKind kind);

/// Per-op-class fault probabilities and shape parameters. A plan is plain
/// data; the schedule it induces is fixed by `seed`.
struct FaultPlan {
  double p_transfer_timeout = 0.0;  ///< a request/response exchange times out
  double p_latency_spike = 0.0;     ///< an exchange pays `latency_spike_ms` extra
  double p_sp_error = 0.0;          ///< SP drops the Verify exchange (transient)
  double p_sp_partial = 0.0;        ///< SP reply loses `partial_drop_frac` of its shares
  double p_dh_miss = 0.0;           ///< DH fetch fails outright
  double p_dh_corrupt = 0.0;        ///< DH delivers a corrupted blob
  /// Storage-writer crash probability per WAL append (kill point: the
  /// process dies mid-batch; recovery replay is what survives it). NOT set
  /// by uniform() — killing the process is opt-in, never part of the
  /// general chaos mix.
  double p_crash = 0.0;

  double transfer_timeout_ms = 400.0;  ///< wasted wait charged for a timed-out exchange
  double latency_spike_ms = 250.0;     ///< extra delay a spiked exchange pays
  double partial_drop_frac = 0.5;      ///< fraction of granted shares a partial reply loses

  std::string seed = "sp-faults";

  /// All probabilities zero (the schedule never fires).
  [[nodiscard]] static FaultPlan none();
  /// Every fault class at probability `rate` — the chaos-suite workhorse.
  [[nodiscard]] static FaultPlan uniform(double rate, std::string schedule_seed = "sp-faults");
};

// ---------------------------------------------------------------- injector

class FaultInjector;

/// One request's deterministic fault tape. Created by
/// FaultInjector::stream(); single-threaded by construction (each serving
/// request owns exactly one). Draws advance private per-class ordinals, so
/// the i-th transfer of a given request always lands on the same schedule
/// slot regardless of what other requests are doing.
class FaultStream {
 public:
  struct TransferFault {
    std::optional<ServeError> fault;  ///< kTimeout when the exchange is lost
    double extra_ms = 0.0;            ///< latency-spike surcharge otherwise
  };

  /// Fault decision for this request's next request/response exchange.
  [[nodiscard]] TransferFault next_transfer();
  /// True = this request's next SP exchange hits a transient outage.
  [[nodiscard]] bool next_sp_error();
  /// How many of `n_shares` granted shares a partial SP reply drops
  /// (0 = reply intact).
  [[nodiscard]] std::size_t next_sp_partial(std::size_t n_shares);
  /// Fault decision for this request's next DH fetch.
  [[nodiscard]] std::optional<ServeError> next_dh();
  /// True = the storage writer dies at this append (PRF-scheduled kill
  /// point). The WAL writer draws once per record, so the same plan seed
  /// always crashes at the same byte offset of the same batch.
  [[nodiscard]] bool next_crash();
  /// Deterministic unit draw in [0, 1) for auxiliary randomness that must
  /// replay with the schedule (e.g. retry-backoff jitter).
  [[nodiscard]] double jitter_unit(std::uint64_t index) const;

 private:
  friend class FaultInjector;
  FaultStream(const FaultInjector* injector, std::array<std::uint8_t, 32> base,
              bool record = true);

  [[nodiscard]] double unit(std::uint8_t op_class, std::uint64_t index) const;

  const FaultInjector* injector_;
  std::array<std::uint8_t, 32> base_;  ///< H(seed, receiver, post, ordinal)
  std::array<std::uint64_t, 5> cursors_{};  ///< transfer / sp / partial / dh / crash ordinals
  bool record_ = true;  ///< false for digest replay tapes: draw, don't count
};

/// Process-wide fault schedule. Thread-safe: stream() takes one short mutex
/// to assign the per-(receiver, post) request ordinal; everything else is
/// pure computation plus relaxed atomic bookkeeping.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The fault tape for one serving request, keyed by (receiver, post) plus
  /// an internal per-key ordinal — the request's retry attempts get fresh
  /// (but still deterministic) tapes by calling stream() again.
  [[nodiscard]] FaultStream stream(std::uint64_t receiver, std::string_view post_id) const;
  /// A tape keyed by an arbitrary label (benches / unit tests).
  [[nodiscard]] FaultStream stream_for_label(std::string_view label) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Total faults injected so far, per kind / overall. The chaos suite
  /// cross-checks these against the sp_faults_injected_total metric deltas.
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const;
  [[nodiscard]] std::uint64_t injected_total() const;

  /// Hex fingerprint of the schedule: every decision for the first
  /// `streams` request ordinals of `label` x the first `ops` op ordinals of
  /// every class. Two injectors agree on a digest iff they agree on every
  /// covered decision — the chaos suite's byte-identical replay check.
  [[nodiscard]] std::string schedule_digest(std::string_view label, std::uint64_t streams,
                                            std::uint64_t ops) const;

 private:
  friend class FaultStream;

  [[nodiscard]] std::array<std::uint8_t, 32> stream_base(std::string_view key,
                                                         std::uint64_t ordinal) const;
  void record(FaultKind kind) const;

  FaultPlan plan_;
  mutable sp::Mutex ordinals_mutex_;
  mutable std::map<std::string, std::uint64_t> ordinals_
      SP_GUARDED_BY(ordinals_mutex_);  ///< per-(receiver,post) request counter
  mutable std::array<std::atomic<std::uint64_t>, kFaultKindCount> injected_{};
};

// ---------------------------------------------------------------- retry

/// Retry/backoff/deadline policy for the serving paths. All times are in the
/// simulation's modeled milliseconds (the same clock CostLedger accumulates),
/// so retry behavior is deterministic — nothing sleeps.
struct RetryPolicy {
  int max_attempts = 4;          ///< total serving attempts (first try included)
  double base_backoff_ms = 25.0; ///< wait before the first retry
  double backoff_factor = 2.0;   ///< exponential growth per retry
  double max_backoff_ms = 1000.0;///< cap on a single backoff wait
  double jitter_frac = 0.25;     ///< backoff is scaled by [1, 1 + jitter_frac)
  double deadline_ms = 15000.0;  ///< overall modeled budget for one request

  /// Backoff before retry `retry_index` (0-based), with `jitter_unit` drawn
  /// uniformly from [0, 1): min(base * factor^i, cap) * (1 + frac * u).
  [[nodiscard]] double backoff_ms(int retry_index, double jitter_unit) const;
};

}  // namespace sp::net
