// Simulated network and device model.
//
// The paper's Figure 10 decomposes every operation into *local processing
// delay* and *network delay* measured on real hardware (PC + Nexus 7 tablet,
// 802.11n WLAN to an EC2 server). We have neither the testbed nor the
// tablet, so we substitute (documented in DESIGN.md):
//
//  * local processing — real measured CPU time of our implementation,
//    multiplied by a device profile's cpu_scale (tablet ≈ 4–6× a 2013 PC on
//    browser crypto, per contemporaneous sunspider-class benchmarks);
//  * network delay — a deterministic transfer-time model over the *actual
//    byte counts* the protocol produces: per-request overhead + RTT +
//    size/bandwidth + seeded jitter (the paper notes "instability ... due
//    to the unpredictability of the communication network speed").
//
// The shape of Fig. 10 (who wins, what grows with N) is produced by the real
// protocol byte counts and real crypto timings, not by hard-coded curves.
#pragma once

#include <chrono>
#include <string>
#include <type_traits>

#include "crypto/drbg.hpp"
#include "net/faults.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::net {

/// Measures real elapsed CPU-ish time (steady clock) for local-processing
/// accounting.
class CpuTimer {
 public:
  CpuTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Client device: scales measured local CPU time.
struct DeviceProfile {
  std::string name;
  double cpu_scale = 1.0;
};

/// Access link + server path characteristics.
struct LinkProfile {
  std::string name;
  double bandwidth_mbps = 60.0;        ///< effective payload throughput
  double rtt_ms = 40.0;                ///< client <-> server round trip
  double per_request_overhead_ms = 8;  ///< HTTP/TLS handling per request
  double jitter_frac = 0.15;           ///< uniform multiplicative jitter
};

/// Paper setup: quad-core 2.5 GHz PC.
DeviceProfile pc_profile();
/// Paper setup: Nexus 7 (2013) tablet; ~5x slower on JS crypto workloads.
DeviceProfile tablet_profile();
/// Paper setup: 802.11n WLAN at 60 Mbps to an EC2-hosted app.
LinkProfile wlan_80211n_to_ec2();
/// Zero-cost link for pure-CPU experiments.
LinkProfile loopback();

/// Deterministic network delay model. Thread-safe: the shared jitter stream
/// sits behind an internal mutex, so concurrent requests can all charge
/// their transfers to one Network. Which request draws which jitter sample
/// becomes scheduling-dependent under concurrency, but the sample *set* for
/// a given seed stays fixed. `const` because modeling a transfer doesn't
/// change the link — it lets the whole receiver-side serving path be const.
class Network {
 public:
  Network(LinkProfile link, crypto::Drbg jitter_rng)
      : link_(std::move(link)), rng_(std::move(jitter_rng)) {}

  /// Delay for one request/response exchange moving `bytes` of payload.
  /// `round_trips` models chatty exchanges (e.g. multi-file uploads).
  double transfer_ms(std::size_t bytes, int round_trips = 1) const;

  /// Fault-aware variant: consults `faults` (may be null = fault-free) before
  /// modeling the exchange. A timed-out exchange returns Err(kTimeout) and
  /// moves no payload — the caller decides what wasted wait to charge; a
  /// latency spike succeeds with the spike surcharge added to the delay.
  [[nodiscard]] Expected<double> try_transfer_ms(std::size_t bytes, int round_trips = 1,
                                                 FaultStream* faults = nullptr) const;

  [[nodiscard]] const LinkProfile& link() const { return link_; }

 private:
  [[nodiscard]] double modeled_ms(std::size_t bytes, int round_trips) const;

  LinkProfile link_;
  mutable sp::Mutex rng_mutex_;
  mutable crypto::Drbg rng_ SP_GUARDED_BY(rng_mutex_);
};

/// Accumulates the Fig. 10 decomposition for one protocol run.
///
/// Concurrency contract: a ledger is a plain value — every request owns its
/// own copy and no ledger is ever shared between threads. The serving core
/// constructs one per access/share call and hands it back inside the
/// result, so ledgers need (and have) no locks.
class CostLedger {
 public:
  /// Defaults to the PC profile (cpu_scale 1.0).
  CostLedger() : device_{"pc-quadcore-2.5ghz", 1.0} {}
  explicit CostLedger(DeviceProfile device) : device_(std::move(device)) {}

  /// Adds measured local CPU time (scaled by the device profile).
  void add_local_measured(double raw_ms) { local_ms_ += raw_ms * device_.cpu_scale; }
  /// Adds modeled network delay.
  void add_network(double ms) { network_ms_ += ms; }
  /// Adds modeled wait that moved no payload: timed-out exchanges and
  /// retry backoff. Kept apart from network_ms so the Fig. 10 network
  /// series stays comparable with and without faults.
  void add_wait(double ms) { wait_ms_ += ms; }
  /// Tracks payload volume for reporting.
  void add_bytes(std::size_t n) { bytes_ += n; }

  /// Folds another attempt's costs into this ledger (device profile is kept
  /// from *this). Retry loops merge every attempt so a request's ledger
  /// reflects everything it really paid, failed attempts included.
  void merge(const CostLedger& other) {
    local_ms_ += other.local_ms_;
    network_ms_ += other.network_ms_;
    wait_ms_ += other.wait_ms_;
    bytes_ += other.bytes_;
  }

  [[nodiscard]] double local_ms() const { return local_ms_; }
  [[nodiscard]] double network_ms() const { return network_ms_; }
  [[nodiscard]] double wait_ms() const { return wait_ms_; }
  [[nodiscard]] double total_ms() const { return local_ms_ + network_ms_ + wait_ms_; }
  [[nodiscard]] std::size_t bytes_transferred() const { return bytes_; }
  [[nodiscard]] const DeviceProfile& device() const { return device_; }

 private:
  DeviceProfile device_;
  double local_ms_ = 0;
  double network_ms_ = 0;
  double wait_ms_ = 0;
  std::size_t bytes_ = 0;
};

// The per-request-copy contract above only holds while ledgers stay freely
// copyable values; adding a lock or reference member would break it.
static_assert(std::is_copy_constructible_v<CostLedger> && std::is_copy_assignable_v<CostLedger>,
              "CostLedger must stay a per-request copyable value type");

}  // namespace sp::net
