#include "abe/access_tree.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::abe {

namespace {

// Unit separator keeps "ab"+"c" and "a"+"bc" distinct.
constexpr char kSep = '\x1f';

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t& off) {
  if (off + 4 > data.size()) throw std::invalid_argument("AccessTree: truncated");
  const std::uint32_t v = (std::uint32_t{data[off]} << 24) | (std::uint32_t{data[off + 1]} << 16) |
                          (std::uint32_t{data[off + 2]} << 8) | std::uint32_t{data[off + 3]};
  off += 4;
  return v;
}

void put_str(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_str(std::span<const std::uint8_t> data, std::size_t& off) {
  const std::uint32_t len = get_u32(data, off);
  if (off + len > data.size()) throw std::invalid_argument("AccessTree: truncated string");
  std::string s(data.begin() + static_cast<std::ptrdiff_t>(off),
                data.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return s;
}

}  // namespace

std::string LeafAttribute::canonical() const {
  return question + kSep + answer;
}

std::string hash_answer(const std::string& answer) {
  return crypto::to_hex(crypto::Sha256::hash(crypto::to_bytes(answer)));
}

AccessTree::AccessTree(Node root) : root_(std::move(root)) { validate(root_); }

void AccessTree::validate(const Node& node) {
  if (node.is_leaf()) {
    if (!node.children.empty()) throw std::invalid_argument("AccessTree: leaf with children");
    if (node.threshold != 1) throw std::invalid_argument("AccessTree: leaf threshold must be 1");
    return;
  }
  if (node.children.empty()) throw std::invalid_argument("AccessTree: internal node w/o children");
  if (node.threshold == 0 || node.threshold > node.children.size()) {
    throw std::invalid_argument("AccessTree: threshold out of range");
  }
  for (const Node& child : node.children) validate(child);
}

AccessTree AccessTree::puzzle_policy(
    const std::vector<std::pair<std::string, std::string>>& question_answers, std::size_t k) {
  if (question_answers.empty()) throw std::invalid_argument("puzzle_policy: no attributes");
  if (k == 0 || k > question_answers.size()) {
    throw std::invalid_argument("puzzle_policy: need 0 < k <= N");
  }
  Node root;
  root.threshold = k;
  for (const auto& [q, a] : question_answers) {
    Node leaf;
    leaf.leaf = LeafAttribute{q, a, false};
    root.children.push_back(std::move(leaf));
  }
  return AccessTree(std::move(root));
}

std::size_t AccessTree::leaf_count() const { return leaves().size(); }

std::vector<std::pair<std::size_t, const AccessTree::Node*>> AccessTree::leaves() const {
  std::vector<std::pair<std::size_t, const Node*>> out;
  std::size_t id = 0;
  std::function<void(const Node&)> dfs = [&](const Node& node) {
    const std::size_t my_id = id++;
    if (node.is_leaf()) {
      out.emplace_back(my_id, &node);
      return;
    }
    for (const Node& child : node.children) dfs(child);
  };
  dfs(root_);
  return out;
}

bool AccessTree::satisfied_by(const std::vector<std::string>& attributes) const {
  std::function<bool(const Node&)> eval = [&](const Node& node) -> bool {
    if (node.is_leaf()) {
      if (node.leaf->perturbed) return false;  // hashed leaves can't match
      return std::find(attributes.begin(), attributes.end(), node.leaf->canonical()) !=
             attributes.end();
    }
    std::size_t satisfied = 0;
    for (const Node& child : node.children) {
      if (eval(child)) ++satisfied;
    }
    return satisfied >= node.threshold;
  };
  return eval(root_);
}

AccessTree AccessTree::perturb() const {
  std::function<Node(const Node&)> walk = [&](const Node& node) -> Node {
    Node copy;
    copy.threshold = node.threshold;
    if (node.is_leaf()) {
      LeafAttribute attr = *node.leaf;
      if (!attr.perturbed) {
        attr.answer = hash_answer(attr.answer);
        attr.perturbed = true;
      }
      copy.leaf = std::move(attr);
      return copy;
    }
    for (const Node& child : node.children) copy.children.push_back(walk(child));
    return copy;
  };
  AccessTree out;
  out.root_ = walk(root_);
  return out;
}

std::pair<AccessTree, std::size_t> AccessTree::reconstruct(
    const std::map<std::string, std::string>& claimed_answers) const {
  std::size_t recovered = 0;
  std::function<Node(const Node&)> walk = [&](const Node& node) -> Node {
    Node copy;
    copy.threshold = node.threshold;
    if (node.is_leaf()) {
      LeafAttribute attr = *node.leaf;
      if (attr.perturbed) {
        auto it = claimed_answers.find(attr.question);
        if (it != claimed_answers.end() && crypto::ct_equal(hash_answer(it->second), attr.answer)) {
          attr.answer = it->second;
          attr.perturbed = false;
          ++recovered;
        }
      }
      copy.leaf = std::move(attr);
      return copy;
    }
    for (const Node& child : node.children) copy.children.push_back(walk(child));
    return copy;
  };
  AccessTree out;
  out.root_ = walk(root_);
  return {out, recovered};
}

Bytes AccessTree::serialize() const {
  Bytes out;
  std::function<void(const Node&)> walk = [&](const Node& node) {
    out.push_back(node.is_leaf() ? 1 : 0);
    if (node.is_leaf()) {
      out.push_back(node.leaf->perturbed ? 1 : 0);
      put_str(out, node.leaf->question);
      put_str(out, node.leaf->answer);
      return;
    }
    put_u32(out, static_cast<std::uint32_t>(node.threshold));
    put_u32(out, static_cast<std::uint32_t>(node.children.size()));
    for (const Node& child : node.children) walk(child);
  };
  walk(root_);
  return out;
}

AccessTree AccessTree::deserialize(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  std::function<Node()> walk = [&]() -> Node {
    if (off >= data.size()) throw std::invalid_argument("AccessTree: truncated");
    const bool is_leaf = data[off++] == 1;
    Node node;
    if (is_leaf) {
      if (off >= data.size()) throw std::invalid_argument("AccessTree: truncated");
      LeafAttribute attr;
      attr.perturbed = data[off++] == 1;
      attr.question = get_str(data, off);
      attr.answer = get_str(data, off);
      node.leaf = std::move(attr);
      return node;
    }
    node.threshold = get_u32(data, off);
    const std::uint32_t n = get_u32(data, off);
    if (n > data.size()) throw std::invalid_argument("AccessTree: implausible child count");
    node.children.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) node.children.push_back(walk());
    return node;
  };
  Node root = walk();
  if (off != data.size()) throw std::invalid_argument("AccessTree: trailing bytes");
  return AccessTree(std::move(root));
}

bool operator==(const AccessTree& a, const AccessTree& b) {
  std::function<bool(const AccessTree::Node&, const AccessTree::Node&)> eq =
      [&](const AccessTree::Node& x, const AccessTree::Node& y) -> bool {
    if (x.threshold != y.threshold || x.is_leaf() != y.is_leaf()) return false;
    if (x.is_leaf()) return *x.leaf == *y.leaf;
    if (x.children.size() != y.children.size()) return false;
    for (std::size_t i = 0; i < x.children.size(); ++i) {
      if (!eq(x.children[i], y.children[i])) return false;
    }
    return true;
  };
  return eq(a.root_, b.root_);
}

}  // namespace sp::abe
