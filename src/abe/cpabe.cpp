#include "abe/cpabe.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace sp::abe {

namespace {

using crypto::Bytes;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t& off) {
  if (off + 4 > data.size()) throw std::invalid_argument("CpAbe: truncated");
  const std::uint32_t v = (std::uint32_t{data[off]} << 24) | (std::uint32_t{data[off + 1]} << 16) |
                          (std::uint32_t{data[off + 2]} << 8) | std::uint32_t{data[off + 3]};
  off += 4;
  return v;
}

void put_blob(Bytes& out, const Bytes& blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

Bytes get_blob(std::span<const std::uint8_t> data, std::size_t& off) {
  const std::uint32_t len = get_u32(data, off);
  if (off + len > data.size()) throw std::invalid_argument("CpAbe: truncated blob");
  Bytes blob(data.begin() + static_cast<std::ptrdiff_t>(off),
             data.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return blob;
}

void put_str(Bytes& out, const std::string& s) {
  put_blob(out, Bytes(s.begin(), s.end()));
}

std::string get_str(std::span<const std::uint8_t> data, std::size_t& off) {
  Bytes b = get_blob(data, off);
  return std::string(b.begin(), b.end());
}

}  // namespace

namespace {
// FIFO caps for the lazy memo caches: enough for every distinct generator
// and attribute a serving workload revisits, bounded against key churn
// (same policy as the fixed-base and Miller-line table registries).
constexpr std::size_t kMaxEggCache = 8;
constexpr std::size_t kMaxAttrCache = 256;
}  // namespace

CpAbe::CpAbe(const ec::Curve& curve) : curve_(&curve), pairing_(curve) {}

BigInt CpAbe::rand_scalar(crypto::Drbg& rng) const {
  auto rb = [&rng](std::size_t n) { return rng.bytes(n); };
  return BigInt::random_below(curve_->order() - BigInt{1}, rb) + BigInt{1};
}

ec::Point CpAbe::generator() const {
  const sp::MutexLock lock(cache_mutex_);
  if (!generator_) {
    generator_ = curve_->hash_to_group(crypto::to_bytes("sp-cpabe-generator"));
    // g is raised to a fresh scalar in Setup, KeyGen and every Encrypt leaf;
    // the window table amortizes across all of them (process-wide cache).
    curve_->precompute_fixed_base(*generator_);
  }
  return *generator_;
}

Fp2 CpAbe::e_gg(const ec::Point& g) const {
  const Bytes gb = curve_->serialize(g);
  // Cache index, not key material: g is a public generator point.
  const std::string memo_id(gb.begin(), gb.end());
  {
    const sp::MutexLock lock(cache_mutex_);
    auto it = e_gg_cache_.find(memo_id);
    if (it != e_gg_cache_.end()) return it->second;
  }
  // Pairing outside the lock: concurrent first callers may both compute it
  // (identical values), but no serving thread ever blocks ~ms on the memo.
  const Fp2 value = pairing_(g, g);
  const sp::MutexLock lock(cache_mutex_);
  if (e_gg_cache_.find(memo_id) == e_gg_cache_.end()) {
    e_gg_fifo_.push_back(memo_id);
    if (e_gg_fifo_.size() > kMaxEggCache) {
      e_gg_cache_.erase(e_gg_fifo_.front());
      e_gg_fifo_.pop_front();
    }
  }
  e_gg_cache_[memo_id] = value;
  return value;
}

ec::Point CpAbe::hash_attr(const std::string& attribute) const {
  {
    const sp::MutexLock lock(cache_mutex_);
    auto it = attr_cache_.find(attribute);
    if (it != attr_cache_.end()) return it->second;
  }
  Bytes labeled = crypto::to_bytes("sp-cpabe-attr");
  Bytes attr = crypto::to_bytes(attribute);
  labeled.insert(labeled.end(), attr.begin(), attr.end());
  // Hash outside the lock (try-and-increment plus a cofactor-sized scalar
  // mul); racing first callers compute the same deterministic point.
  const ec::Point h = curve_->hash_to_group(labeled);
  const sp::MutexLock lock(cache_mutex_);
  if (attr_cache_.find(attribute) == attr_cache_.end()) {
    attr_fifo_.push_back(attribute);
    if (attr_fifo_.size() > kMaxAttrCache) {
      attr_cache_.erase(attr_fifo_.front());
      attr_fifo_.pop_front();
    }
  }
  attr_cache_[attribute] = h;
  return h;
}

std::pair<PublicKey, MasterKey> CpAbe::setup(crypto::Drbg& rng) const {
  const ec::Point g = generator();
  const BigInt alpha = rand_scalar(rng);
  const BigInt beta = rand_scalar(rng);
  PublicKey pk;
  pk.g = g;
  pk.h = curve_->mul(g, beta);
  pk.f = curve_->mul(g, BigInt::mod_inv(beta, curve_->order()));
  // h carries the per-share exponent in every Encrypt (C = h^s); f is the
  // delegation base. Register both alongside g for fixed-base windowing,
  // and give the long-lived params Miller-line tables so any pairing
  // against them (e(g,g) on a fresh CpAbe instance, delegation checks)
  // skips the Miller point arithmetic process-wide.
  curve_->precompute_fixed_base(pk.h);
  curve_->precompute_fixed_base(pk.f);
  pairing_.precompute(g);
  pairing_.precompute(pk.h);
  pairing_.precompute(pk.f);
  pk.e_gg_alpha = e_gg(g).pow(alpha);
  MasterKey mk;
  mk.beta = beta;
  mk.g_alpha = curve_->mul(g, alpha);
  return {pk, mk};
}

PrivateKey CpAbe::keygen(const MasterKey& mk, const std::vector<std::string>& attributes,
                         crypto::Drbg& rng) const {
  if (attributes.empty()) throw std::invalid_argument("CpAbe::keygen: empty attribute set");
  const ec::Point g = generator();
  const BigInt r = rand_scalar(rng);
  PrivateKey sk;
  // D = g^((α+r)/β): g^α is in MK, so compute (g^α · g^r)^(1/β).
  const BigInt beta_inv = BigInt::mod_inv(mk.beta, curve_->order());
  sk.d = curve_->mul(curve_->add(mk.g_alpha, curve_->mul(g, r)), beta_inv);
  for (const std::string& attr : attributes) {
    if (sk.attrs.count(attr) != 0) continue;  // dedupe
    const BigInt rj = rand_scalar(rng);
    PrivateKey::AttrKey ak;
    ak.dj = curve_->add(curve_->mul(g, r), curve_->mul(hash_attr(attr), rj));
    ak.dj_prime = curve_->mul(g, rj);
    sk.attrs.emplace(attr, std::move(ak));
  }
  return sk;
}

void CpAbe::share_secret(const AccessTree::Node& node, const BigInt& value, std::size_t& next_id,
                         Ciphertext& ct, crypto::Drbg& rng) const {
  const std::size_t my_id = next_id++;
  const ec::Point g = generator();
  if (node.is_leaf()) {
    if (node.leaf->perturbed) {
      throw std::invalid_argument("CpAbe::encrypt: policy leaf is perturbed (encrypt first, "
                                  "perturb after)");
    }
    Ciphertext::LeafCt leaf_ct;
    leaf_ct.cy = curve_->mul(g, value);
    leaf_ct.cy_prime = curve_->mul(hash_attr(node.leaf->canonical()), value);
    ct.leaves.emplace(my_id, std::move(leaf_ct));
    return;
  }
  // Polynomial q_x of degree threshold-1, q_x(0) = value; child i gets
  // q_x(i) with 1-based index i.
  const BigInt& q = curve_->order();
  std::vector<BigInt> coeffs;
  coeffs.reserve(node.threshold);
  coeffs.push_back(value.mod(q));
  for (std::size_t i = 1; i < node.threshold; ++i) {
    auto rb = [&rng](std::size_t n) { return rng.bytes(n); };
    coeffs.push_back(BigInt::random_below(q, rb));
  }
  for (std::size_t child = 0; child < node.children.size(); ++child) {
    const BigInt x = BigInt::from_u64(child + 1);
    BigInt y = coeffs.back();
    for (std::size_t i = coeffs.size() - 1; i-- > 0;) {
      y = (BigInt::mod_mul(y, x, q) + coeffs[i]).mod(q);
    }
    share_secret(node.children[child], y, next_id, ct, rng);
  }
}

std::pair<Ciphertext, Bytes> CpAbe::encrypt_key(const PublicKey& pk, const AccessTree& policy,
                                                crypto::Drbg& rng) const {
  Ciphertext ct;
  ct.policy = policy;
  const BigInt s = rand_scalar(rng);
  // KEM message: random target-group element M = e(g,g)^z.
  const BigInt z = rand_scalar(rng);
  const Fp2 m = e_gg(pk.g).pow(z);
  ct.c_tilde = m * pk.e_gg_alpha.pow(s);
  ct.c = curve_->mul(pk.h, s);
  std::size_t next_id = 0;
  share_secret(policy.root(), s, next_id, ct, rng);
  return {ct, crypto::Sha256::hash(m.to_bytes())};
}

namespace {
// Number of DFS ids a subtree consumes (to skip children without pairing).
std::size_t subtree_size(const AccessTree::Node& node) {
  std::size_t n = 1;
  for (const auto& child : node.children) n += subtree_size(child);
  return n;
}
}  // namespace

std::optional<Fp2> CpAbe::decrypt_node(const PrivateKey& sk, const Ciphertext& ct,
                                       const AccessTree::Node& node,
                                       std::size_t& next_id) const {
  const std::size_t my_id = next_id++;
  if (node.is_leaf()) {
    if (node.leaf->perturbed) return std::nullopt;  // unreconstructed leaf
    const auto key_it = sk.attrs.find(node.leaf->canonical());
    if (key_it == sk.attrs.end()) return std::nullopt;
    const auto ct_it = ct.leaves.find(my_id);
    if (ct_it == ct.leaves.end()) return std::nullopt;  // tree/ct mismatch
    // e(D_j, C_y) / e(D_j', C_y') = e(g,g)^(r·q_y(0)).
    const Fp2 num = pairing_(key_it->second.dj, ct_it->second.cy);
    const Fp2 den = pairing_(key_it->second.dj_prime, ct_it->second.cy_prime);
    return num * den.inv();
  }
  // Evaluate children until the threshold is met; remaining subtrees only
  // advance the DFS id counter (decryption is O(threshold) pairings per
  // gate, matching BSW07's "choose a satisfying subset" semantics).
  std::vector<std::pair<std::size_t, Fp2>> available;  // (1-based index, value)
  for (std::size_t child = 0; child < node.children.size(); ++child) {
    if (available.size() == node.threshold) {
      next_id += subtree_size(node.children[child]);
      continue;
    }
    auto result = decrypt_node(sk, ct, node.children[child], next_id);
    if (result.has_value()) {
      available.emplace_back(child + 1, std::move(*result));
    }
  }
  if (available.size() < node.threshold) return std::nullopt;
  // Lagrange combination at 0 over the chosen child indices, in Z_q.
  const BigInt& q = curve_->order();
  Fp2 acc = Fp2::one(curve_->fp());
  for (std::size_t i = 0; i < available.size(); ++i) {
    BigInt num{1}, den{1};
    const BigInt xi = BigInt::from_u64(available[i].first);
    for (std::size_t j = 0; j < available.size(); ++j) {
      if (i == j) continue;
      const BigInt xj = BigInt::from_u64(available[j].first);
      num = BigInt::mod_mul(num, (-xj).mod(q), q);
      den = BigInt::mod_mul(den, (xi - xj).mod(q), q);
    }
    const BigInt coeff = BigInt::mod_mul(num, BigInt::mod_inv(den, q), q);
    acc = acc * available[i].second.pow(coeff);
  }
  return acc;
}

bool CpAbe::mark_satisfiable(const PrivateKey& sk, const Ciphertext& ct,
                             const AccessTree::Node& node, std::size_t& next_id,
                             std::vector<char>& sat) const {
  const std::size_t my_id = next_id++;
  if (sat.size() <= my_id) sat.resize(my_id + 1, 0);
  bool ok;
  if (node.is_leaf()) {
    ok = !node.leaf->perturbed && sk.attrs.count(node.leaf->canonical()) != 0 &&
         ct.leaves.count(my_id) != 0;
  } else {
    // Visit ALL children (the verdicts drive flatten_node's skip logic);
    // this pass is pure map lookups, no pairings.
    std::size_t satisfied = 0;
    for (const auto& child : node.children) {
      satisfied += mark_satisfiable(sk, ct, child, next_id, sat) ? 1 : 0;
    }
    ok = satisfied >= node.threshold;
  }
  sat[my_id] = ok ? 1 : 0;
  return ok;
}

void CpAbe::flatten_node(const AccessTree::Node& node, std::size_t& next_id, const BigInt& coeff,
                         const std::vector<char>& sat, std::vector<LeafUse>& out) const {
  next_id++;  // my_id; callers only recurse into satisfied nodes
  if (node.is_leaf()) {
    out.push_back({next_id - 1, node.leaf->canonical(), coeff});
    return;
  }
  // Choose the first `threshold` satisfiable children in index order —
  // exactly the subset the reference recursion evaluates — then fold this
  // gate's Lagrange coefficient at 0 into each chosen child's cumulative
  // exponent. (v^a)^b = v^(ab mod q) for the order-q pairing outputs, so
  // one pow per leaf with the collapsed exponent matches the reference's
  // nested pows exactly.
  std::vector<std::size_t> child_ids(node.children.size());
  {
    std::size_t id = next_id;
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      child_ids[c] = id;
      id += subtree_size(node.children[c]);
    }
  }
  std::vector<std::size_t> selected;  // 0-based child positions
  selected.reserve(node.threshold);
  for (std::size_t c = 0; c < node.children.size() && selected.size() < node.threshold; ++c) {
    if (sat[child_ids[c]]) selected.push_back(c);
  }
  const BigInt& q = curve_->order();
  std::size_t pick = 0;
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    if (pick >= selected.size() || selected[pick] != c) {
      next_id += subtree_size(node.children[c]);  // skipped subtree
      continue;
    }
    ++pick;
    const BigInt xi = BigInt::from_u64(c + 1);
    BigInt num{1}, den{1};
    for (const std::size_t other : selected) {
      if (other == c) continue;
      const BigInt xj = BigInt::from_u64(other + 1);
      num = BigInt::mod_mul(num, (-xj).mod(q), q);
      den = BigInt::mod_mul(den, (xi - xj).mod(q), q);
    }
    const BigInt lambda = BigInt::mod_mul(num, BigInt::mod_inv(den, q), q);
    flatten_node(node.children[c], next_id, BigInt::mod_mul(coeff, lambda, q), sat, out);
  }
}

std::optional<Bytes> CpAbe::decrypt_key(const PublicKey& pk, const PrivateKey& sk,
                                        const Ciphertext& ct,
                                        const ParallelRunner& runner) const {
  (void)pk;
  // Phase 1: pairing-free satisfiability + leaf selection with collapsed
  // Lagrange exponents (same subset and coefficients as the reference).
  std::vector<char> sat;
  {
    std::size_t next_id = 0;
    if (!mark_satisfiable(sk, ct, ct.policy.root(), next_id, sat)) return std::nullopt;
  }
  std::vector<LeafUse> uses;
  {
    std::size_t next_id = 0;
    flatten_node(ct.policy.root(), next_id, BigInt{1}, sat, uses);
  }
  // Phase 2: one multi-pairing. Ciphertext components go FIRST so the
  // Miller-line tables key on the long-lived side (ê is symmetric on the
  // cyclic order-q subgroup; the symmetry is part of the ec equivalence
  // suite) and amortize across every access to the same post. The product
  //   ∏_y ( ê(C_y, D_j)·ê(C_y', D_j')^{-1} )^(Λ_y) · ê(C, D)^{-1}
  // equals A / e(C, D) of the reference, with ONE final exponentiation
  // instead of 2·|leaves| + 1.
  std::vector<ec::Pairing::Term> terms;
  terms.reserve(uses.size() * 2 + 1);
  for (const LeafUse& use : uses) {
    const auto& ak = sk.attrs.at(use.attr);          // present: sat pass checked
    const auto& leaf_ct = ct.leaves.at(use.id);      // present: sat pass checked
    terms.push_back({leaf_ct.cy, ak.dj, false, use.coeff});
    terms.push_back({leaf_ct.cy_prime, ak.dj_prime, true, use.coeff});
  }
  terms.push_back({ct.c, sk.d, true, BigInt{1}});
  const Fp2 ratio = pairing_.product(terms, runner);
  // M = C̃ · A / e(C, D), with A = e(g,g)^(rs) and e(C, D) = e(g,g)^(s(α+r)).
  const Fp2 m = ct.c_tilde * ratio;
  return crypto::Sha256::hash(m.to_bytes());
}

std::optional<Bytes> CpAbe::decrypt_key_reference(const PublicKey& pk, const PrivateKey& sk,
                                                  const Ciphertext& ct) const {
  (void)pk;
  std::size_t next_id = 0;
  const std::optional<Fp2> a = decrypt_node(sk, ct, ct.policy.root(), next_id);
  if (!a.has_value()) return std::nullopt;
  // M = C̃ · A / e(C, D), with A = e(g,g)^(rs) and e(C, D) = e(g,g)^(s(α+r)).
  const Fp2 e_c_d = pairing_(ct.c, sk.d);
  const Fp2 m = ct.c_tilde * (*a) * e_c_d.inv();
  return crypto::Sha256::hash(m.to_bytes());
}

Ciphertext CpAbe::swap_policy(Ciphertext ct, AccessTree new_policy) {
  ct.policy = std::move(new_policy);
  return ct;
}

Bytes CpAbe::serialize(const PublicKey& pk) const {
  Bytes out;
  put_blob(out, curve_->serialize(pk.g));
  put_blob(out, curve_->serialize(pk.h));
  put_blob(out, curve_->serialize(pk.f));
  put_blob(out, pk.e_gg_alpha.to_bytes());
  return out;
}

PublicKey CpAbe::deserialize_public_key(std::span<const std::uint8_t> data) const {
  std::size_t off = 0;
  PublicKey pk;
  pk.g = curve_->deserialize(get_blob(data, off));
  pk.h = curve_->deserialize(get_blob(data, off));
  pk.f = curve_->deserialize(get_blob(data, off));
  pk.e_gg_alpha = Fp2::from_bytes(curve_->fp(), get_blob(data, off));
  if (off != data.size()) throw std::invalid_argument("CpAbe: trailing bytes in public key");
  return pk;
}

Bytes CpAbe::serialize(const MasterKey& mk) const {
  Bytes out;
  put_blob(out, mk.beta.to_bytes(curve_->fp()->byte_length()));
  put_blob(out, curve_->serialize(mk.g_alpha));
  return out;
}

MasterKey CpAbe::deserialize_master_key(std::span<const std::uint8_t> data) const {
  std::size_t off = 0;
  MasterKey mk;
  mk.beta = BigInt::from_bytes(get_blob(data, off));
  mk.g_alpha = curve_->deserialize(get_blob(data, off));
  if (off != data.size()) throw std::invalid_argument("CpAbe: trailing bytes in master key");
  return mk;
}

Bytes CpAbe::serialize(const PrivateKey& sk) const {
  Bytes out;
  put_blob(out, curve_->serialize(sk.d));
  put_u32(out, static_cast<std::uint32_t>(sk.attrs.size()));
  for (const auto& [attr, ak] : sk.attrs) {
    put_str(out, attr);
    put_blob(out, curve_->serialize(ak.dj));
    put_blob(out, curve_->serialize(ak.dj_prime));
  }
  return out;
}

PrivateKey CpAbe::deserialize_private_key(std::span<const std::uint8_t> data) const {
  std::size_t off = 0;
  PrivateKey sk;
  sk.d = curve_->deserialize(get_blob(data, off));
  const std::uint32_t n = get_u32(data, off);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string attr = get_str(data, off);
    PrivateKey::AttrKey ak;
    ak.dj = curve_->deserialize(get_blob(data, off));
    ak.dj_prime = curve_->deserialize(get_blob(data, off));
    sk.attrs.emplace(attr, std::move(ak));
  }
  if (off != data.size()) throw std::invalid_argument("CpAbe: trailing bytes in private key");
  return sk;
}

Bytes CpAbe::serialize(const Ciphertext& ct) const {
  Bytes out;
  put_blob(out, ct.policy.serialize());
  put_blob(out, ct.c_tilde.to_bytes());
  put_blob(out, curve_->serialize(ct.c));
  put_u32(out, static_cast<std::uint32_t>(ct.leaves.size()));
  for (const auto& [id, leaf] : ct.leaves) {
    put_u32(out, static_cast<std::uint32_t>(id));
    put_blob(out, curve_->serialize(leaf.cy));
    put_blob(out, curve_->serialize(leaf.cy_prime));
  }
  return out;
}

Ciphertext CpAbe::deserialize_ciphertext(std::span<const std::uint8_t> data) const {
  std::size_t off = 0;
  Ciphertext ct;
  ct.policy = AccessTree::deserialize(get_blob(data, off));
  ct.c_tilde = Fp2::from_bytes(curve_->fp(), get_blob(data, off));
  ct.c = curve_->deserialize(get_blob(data, off));
  const std::uint32_t n = get_u32(data, off);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t id = get_u32(data, off);
    Ciphertext::LeafCt leaf;
    leaf.cy = curve_->deserialize(get_blob(data, off));
    leaf.cy_prime = curve_->deserialize(get_blob(data, off));
    ct.leaves.emplace(id, std::move(leaf));
  }
  if (off != data.size()) throw std::invalid_argument("CpAbe: trailing bytes in ciphertext");
  return ct;
}

}  // namespace sp::abe
