// Ciphertext-Policy Attribute-Based Encryption (Bethencourt–Sahai–Waters,
// IEEE S&P 2007) — the scheme behind the paper's Construction 2, rebuilt
// from scratch on our own pairing (paper §III-C).
//
//   Setup      → PK = (g, h = g^β, f = g^(1/β), e(g,g)^α),  MK = (β, g^α)
//   Encrypt    → CT = (τ, C̃ = M·e(g,g)^(αs), C = h^s,
//                      ∀ leaf y: C_y = g^(q_y(0)), C_y' = H(att(y))^(q_y(0)))
//   KeyGen(S)  → SK = (D = g^((α+r)/β), ∀ j ∈ S: D_j = g^r·H(j)^(r_j),
//                      D_j' = g^(r_j))
//   Decrypt    → DecryptNode recursion + Lagrange combination at gates,
//                then M = C̃ / (e(C, D) / e(g,g)^(rs)).
//
// Used as a KEM: Encrypt draws a random target-group element M and returns
// SHA-256(M) as the data-encapsulation key; Decrypt re-derives it. The
// paper's Perturb/Reconstruct tweak operates on the access tree embedded in
// the ciphertext (swap_policy), hiding answers from SP and DH.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>

#include "abe/access_tree.hpp"
#include "ec/pairing.hpp"
#include "ec/params.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::abe {

using crypto::BigInt;
using field::Fp2;

struct PublicKey {
  ec::Point g;
  ec::Point h;        ///< g^β
  ec::Point f;        ///< g^(1/β) (delegation; carried for fidelity to BSW07)
  Fp2 e_gg_alpha;     ///< e(g,g)^α
};

struct MasterKey {
  BigInt beta;
  ec::Point g_alpha;  ///< g^α
};

struct PrivateKey {
  ec::Point d;  ///< g^((α+r)/β)
  struct AttrKey {
    ec::Point dj;        ///< g^r · H(j)^(r_j)
    ec::Point dj_prime;  ///< g^(r_j)
  };
  std::map<std::string, AttrKey> attrs;  ///< keyed by canonical attribute
};

struct Ciphertext {
  AccessTree policy;  ///< τ (or τ' after swap_policy(perturb))
  Fp2 c_tilde;        ///< M · e(g,g)^(αs)
  ec::Point c;        ///< h^s
  struct LeafCt {
    ec::Point cy;        ///< g^(q_y(0))
    ec::Point cy_prime;  ///< H(att(y))^(q_y(0))
  };
  std::map<std::size_t, LeafCt> leaves;  ///< keyed by DFS leaf node id
};

class CpAbe {
 public:
  explicit CpAbe(const ec::Curve& curve);

  /// Setup: samples α, β and produces the key pair. (The paper's sharer
  /// runs cpabe-setup per shared object.)
  [[nodiscard]] std::pair<PublicKey, MasterKey> setup(crypto::Drbg& rng) const;

  /// KeyGen(MK, S): private key for canonical attribute strings S.
  [[nodiscard]] PrivateKey keygen(const MasterKey& mk, const std::vector<std::string>& attributes,
                                  crypto::Drbg& rng) const;

  /// Encrypt-as-KEM under policy τ (leaves must be unperturbed). Returns the
  /// ciphertext and the 32-byte DEM key SHA-256(M).
  [[nodiscard]] std::pair<Ciphertext, Bytes> encrypt_key(const PublicKey& pk,
                                                         const AccessTree& policy,
                                                         crypto::Drbg& rng) const;

  /// Optional executor for the independent per-leaf Miller loops inside
  /// decrypt_key (sp::core's VerifyQueue builds one; empty = inline). The
  /// alias keeps sp::abe free of core dependencies.
  using ParallelRunner = ec::Pairing::Runner;

  /// Decrypt: re-derives the DEM key, or nullopt when the key's attributes
  /// do not satisfy the ciphertext policy. A policy that *structurally*
  /// matches but was built from different answers yields a wrong key (the
  /// authenticated DEM layer then rejects) — mirroring the paper's flow.
  ///
  /// Batched (PR 7): a pairing-free satisfiability pass picks the same
  /// leaf subset as the BSW07 recursion, each chosen leaf's gate-path
  /// Lagrange coefficients are collapsed into one cumulative exponent mod
  /// q, and all leaf pairs plus e(C, D)^{-1} are folded into a single
  /// Pairing::product() — one final exponentiation instead of 2k+1.
  /// Byte-identical to decrypt_key_reference() (equivalence suite).
  [[nodiscard]] std::optional<Bytes> decrypt_key(const PublicKey& pk, const PrivateKey& sk,
                                                 const Ciphertext& ct,
                                                 const ParallelRunner& runner = {}) const;

  /// The original per-leaf DecryptNode recursion (two full pairings per
  /// satisfied leaf, Lagrange pows post-exponentiation), kept as the
  /// equivalence oracle for the batched decrypt_key().
  [[nodiscard]] std::optional<Bytes> decrypt_key_reference(const PublicKey& pk,
                                                           const PrivateKey& sk,
                                                           const Ciphertext& ct) const;

  /// Paper §V-B Perturb/Reconstruct: replace the embedded access tree
  /// (crypto components are untouched; only the metadata tree changes).
  static Ciphertext swap_policy(Ciphertext ct, AccessTree new_policy);

  /// Wire encodings — the bench harness charges these byte counts to the
  /// network model (the paper measured ~600 KB of CP-ABE files per share).
  [[nodiscard]] Bytes serialize(const PublicKey& pk) const;
  [[nodiscard]] Bytes serialize(const MasterKey& mk) const;
  [[nodiscard]] Bytes serialize(const PrivateKey& sk) const;
  [[nodiscard]] Bytes serialize(const Ciphertext& ct) const;
  [[nodiscard]] PublicKey deserialize_public_key(std::span<const std::uint8_t> data) const;
  [[nodiscard]] MasterKey deserialize_master_key(std::span<const std::uint8_t> data) const;
  [[nodiscard]] PrivateKey deserialize_private_key(std::span<const std::uint8_t> data) const;
  [[nodiscard]] Ciphertext deserialize_ciphertext(std::span<const std::uint8_t> data) const;

  [[nodiscard]] const ec::Curve& curve() const { return *curve_; }

 private:
  [[nodiscard]] BigInt rand_scalar(crypto::Drbg& rng) const;
  /// H(attribute) via hash_to_group, memoized — a group hash costs a
  /// cofactor-sized scalar multiplication, and KeyGen re-hashes the same
  /// canonical attributes on every access request. FIFO-capped.
  [[nodiscard]] ec::Point hash_attr(const std::string& attribute) const;
  /// The fixed public generator g (hash-to-group of a domain tag), cached
  /// and registered for fixed-base scalar multiplication.
  [[nodiscard]] ec::Point generator() const;
  /// e(g, g) for the given generator, cached — Setup and every Encrypt need
  /// it, and the pairing is the single most expensive primitive. FIFO-capped
  /// (one entry per distinct generator under key churn).
  [[nodiscard]] Fp2 e_gg(const ec::Point& g) const;

  /// Recursive share assignment for Encrypt.
  void share_secret(const AccessTree::Node& node, const BigInt& value, std::size_t& next_id,
                    Ciphertext& ct, crypto::Drbg& rng) const;
  /// DecryptNode: e(g,g)^(r·q_x(0)) or nullopt (reference path).
  [[nodiscard]] std::optional<Fp2> decrypt_node(const PrivateKey& sk, const Ciphertext& ct,
                                                const AccessTree::Node& node,
                                                std::size_t& next_id) const;

  /// Pairing-free satisfiability pass: sat[id] records, per DFS node id,
  /// whether that subtree is satisfied — the same verdict the BSW07
  /// recursion reaches by pairing, so the batched path selects the same
  /// leaves. Returns sat[root].
  bool mark_satisfiable(const PrivateKey& sk, const Ciphertext& ct,
                        const AccessTree::Node& node, std::size_t& next_id,
                        std::vector<char>& sat) const;

  /// One chosen leaf of the flattened decryption: its ciphertext
  /// components are paired with the attribute key and raised to `coeff`,
  /// the product of the Lagrange coefficients along its gate path (mod q).
  struct LeafUse {
    std::size_t id;
    std::string attr;
    BigInt coeff;
  };
  /// Collects the chosen leaves (first `threshold` satisfiable children
  /// per gate, in index order — exactly the reference selection) with
  /// their cumulative exponents.
  void flatten_node(const AccessTree::Node& node, std::size_t& next_id, const BigInt& coeff,
                    const std::vector<char>& sat, std::vector<LeafUse>& out) const;

  const ec::Curve* curve_;
  ec::Pairing pairing_;
  /// One mutex for all lazy caches: CpAbe is const-shared across serving
  /// threads (Construction 2 calls keygen/encrypt/decrypt concurrently), so
  /// the mutable memo state below must be guarded. No lock is held across
  /// a pairing or scalar multiplication except the one being memoized.
  mutable sp::Mutex cache_mutex_;
  mutable std::optional<ec::Point> generator_ SP_GUARDED_BY(cache_mutex_);
  /// e(g,g) keyed by serialized generator; FIFO-capped (kMaxEggCache).
  mutable std::unordered_map<std::string, Fp2> e_gg_cache_ SP_GUARDED_BY(cache_mutex_);
  mutable std::deque<std::string> e_gg_fifo_ SP_GUARDED_BY(cache_mutex_);
  /// H(attr) memo; FIFO-capped (kMaxAttrCache).
  mutable std::unordered_map<std::string, ec::Point> attr_cache_ SP_GUARDED_BY(cache_mutex_);
  mutable std::deque<std::string> attr_fifo_ SP_GUARDED_BY(cache_mutex_);
};

}  // namespace sp::abe
