// CP-ABE access-tree policies (paper §III-C and §V-B).
//
// A tree of threshold gates: an internal node with c children and threshold
// t is satisfied when >= t children are satisfied; a leaf is satisfied when
// the decryptor holds its attribute. Social puzzles use a height-1 tree —
// root threshold k over N leaves, each leaf carrying a (question, answer)
// attribute — but the implementation supports arbitrary depth, since BSW07
// does and the paper presents the general scheme.
//
// The paper's Perturb step replaces every leaf answer with its hash so the
// SP/DH never see answers; Reconstruct substitutes claimed answers back for
// the leaves a receiver knows.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace sp::abe {

using crypto::Bytes;

/// A leaf attribute: a context question plus either the clear answer or
/// (after Perturb) the hex SHA-256 of the answer.
struct LeafAttribute {
  std::string question;
  std::string answer;        ///< clear answer, or hex hash when `perturbed`
  bool perturbed = false;

  /// Canonical attribute string fed to the group hash H: "q\x1fa". Only
  /// meaningful for unperturbed leaves.
  [[nodiscard]] std::string canonical() const;

  friend bool operator==(const LeafAttribute&, const LeafAttribute&) = default;
};

/// Hex SHA-256 of an answer string — the Perturb transformation.
std::string hash_answer(const std::string& answer);

class AccessTree {
 public:
  struct Node {
    std::size_t threshold = 1;               ///< k_x (1 for leaves)
    std::vector<Node> children;              ///< empty for leaves
    std::optional<LeafAttribute> leaf;       ///< set for leaves

    [[nodiscard]] bool is_leaf() const { return leaf.has_value(); }
  };

  AccessTree() = default;
  explicit AccessTree(Node root);

  /// The paper's puzzle policy: root threshold k over the given
  /// question/answer pairs (height 1). Requires 0 < k <= pairs.size().
  static AccessTree puzzle_policy(
      const std::vector<std::pair<std::string, std::string>>& question_answers, std::size_t k);

  [[nodiscard]] const Node& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const;

  /// All leaves in deterministic (DFS) order, with their node ids. Node ids
  /// are the DFS visit order and index ciphertext components.
  [[nodiscard]] std::vector<std::pair<std::size_t, const Node*>> leaves() const;

  /// True when the attribute set satisfies the tree (pure policy check; no
  /// cryptography). Attributes are canonical strings.
  [[nodiscard]] bool satisfied_by(const std::vector<std::string>& attributes) const;

  /// Perturb (paper §V-B): returns a copy with every leaf answer replaced by
  /// its hash. Idempotent.
  [[nodiscard]] AccessTree perturb() const;

  /// Reconstruct (paper §V-B): for each leaf whose stored hash matches the
  /// hash of a claimed answer for that question, substitute the clear
  /// answer. Returns the partially reconstructed tree plus how many leaves
  /// were recovered.
  [[nodiscard]] std::pair<AccessTree, std::size_t> reconstruct(
      const std::map<std::string, std::string>& claimed_answers) const;

  /// Wire format (length-prefixed binary); byte-size accounting feeds the
  /// network model.
  [[nodiscard]] Bytes serialize() const;
  static AccessTree deserialize(std::span<const std::uint8_t> data);

  friend bool operator==(const AccessTree& a, const AccessTree& b);

 private:
  static void validate(const Node& node);

  Node root_;
};

}  // namespace sp::abe
