#include "field/fp.hpp"

#include <stdexcept>

namespace sp::field {

FpCtx::FpCtx(BigInt p) : p_(std::move(p)) {
  if (p_ <= BigInt{2} || !p_.is_odd()) {
    throw std::invalid_argument("FpCtx: modulus must be an odd prime > 2");
  }
  byte_len_ = (p_.bit_length() + 7) / 8;
  p3mod4_ = (p_ % BigInt{4}) == BigInt{3};
  // Barrett precomputation: μ = floor(2^(2s) / p) with s = bit_length(p).
  shift_ = p_.bit_length();
  mu_ = (BigInt{1} << (2 * shift_)) / p_;
  p_minus_2_ = p_ - BigInt{2};
  if (crypto::MontCtx::usable(p_)) mont_.emplace(p_);
}

BigInt FpCtx::reduce(const BigInt& x) const {
  if (x.is_negative() || x.bit_length() > 2 * shift_) return x.mod(p_);
  // q ≈ floor(x / p); r = x - q*p is within a few subtractions of the result.
  BigInt q = ((x >> (shift_ - 1)) * mu_) >> (shift_ + 1);
  BigInt r = x - q * p_;
  while (r >= p_) r -= p_;
  return r;
}

BigInt FpCtx::mul_mod(const BigInt& a, const BigInt& b) const {
  if (mont_) return mont_->mul(a, b);
  return reduce(a * b);
}

BigInt FpCtx::pow_mod(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) throw std::domain_error("FpCtx::pow_mod: negative exponent");
  if (mont_) return mont_->pow(base, exp);
  return pow_mod_barrett(base, exp);
}

BigInt FpCtx::inv_mod(const BigInt& a) const {
  const BigInt r = a.mod(p_);
  if (r.is_zero()) throw std::domain_error("FpCtx::inv_mod: zero has no inverse");
  // Fermat: a^{p-2} = a^{-1} for prime p. Faster than extended Euclid here
  // because Euclid's per-step Knuth-D division dwarfs CIOS multiplies.
  if (mont_) return mont_->pow(r, p_minus_2_);
  return BigInt::mod_inv(r, p_);
}

BigInt FpCtx::mul_mod_barrett(const BigInt& a, const BigInt& b) const { return reduce(a * b); }

BigInt FpCtx::pow_mod_barrett(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) throw std::domain_error("FpCtx::pow_mod: negative exponent");
  BigInt result{1};
  const BigInt b = base.mod(p_);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = mul_mod_barrett(result, result);
    if (exp.bit(i)) result = mul_mod_barrett(result, b);
  }
  return result;
}

FpCtxPtr make_fp(BigInt p) { return std::make_shared<const FpCtx>(std::move(p)); }

Fp::Fp(FpCtxPtr ctx, const BigInt& value) : ctx_(std::move(ctx)) {
  if (!ctx_) throw std::invalid_argument("Fp: null field context");
  v_ = value.mod(ctx_->p());
}

Fp Fp::zero(const FpCtxPtr& ctx) { return Fp(ctx, BigInt{0}); }
Fp Fp::one(const FpCtxPtr& ctx) { return Fp(ctx, BigInt{1}); }

Fp Fp::random(const FpCtxPtr& ctx, crypto::Drbg& rng) {
  BigInt v = BigInt::random_below(ctx->p(), [&rng](std::size_t n) { return rng.bytes(n); });
  return Fp(ctx, v);
}

Fp Fp::random_nonzero(const FpCtxPtr& ctx, crypto::Drbg& rng) {
  for (;;) {
    Fp v = random(ctx, rng);
    if (!v.is_zero()) return v;
  }
}

Fp Fp::from_bytes(const FpCtxPtr& ctx, std::span<const std::uint8_t> data) {
  return Fp(ctx, BigInt::from_bytes(data));
}

Bytes Fp::to_bytes() const {
  if (!ctx_) throw std::logic_error("Fp::to_bytes: null element");
  return v_.to_bytes(ctx_->byte_length());
}

void Fp::require_same_field(const Fp& other) const {
  if (!ctx_ || !other.ctx_) throw std::logic_error("Fp: operation on null element");
  if (ctx_ != other.ctx_ && ctx_->p() != other.ctx_->p()) {
    throw std::logic_error("Fp: mixed-field operation");
  }
}

Fp operator+(const Fp& a, const Fp& b) {
  a.require_same_field(b);
  BigInt s = a.v_ + b.v_;
  if (s >= a.ctx_->p()) s -= a.ctx_->p();
  Fp r;
  r.ctx_ = a.ctx_;
  r.v_ = std::move(s);
  return r;
}

Fp operator-(const Fp& a, const Fp& b) {
  a.require_same_field(b);
  BigInt s = a.v_ - b.v_;
  if (s.is_negative()) s += a.ctx_->p();
  Fp r;
  r.ctx_ = a.ctx_;
  r.v_ = std::move(s);
  return r;
}

Fp operator*(const Fp& a, const Fp& b) {
  a.require_same_field(b);
  Fp r;
  r.ctx_ = a.ctx_;
  r.v_ = a.ctx_->mul_mod(a.v_, b.v_);
  return r;
}

Fp Fp::operator-() const {
  if (!ctx_) throw std::logic_error("Fp: negate null element");
  Fp r;
  r.ctx_ = ctx_;
  r.v_ = v_.is_zero() ? BigInt{0} : ctx_->p() - v_;
  return r;
}

bool operator==(const Fp& a, const Fp& b) {
  if (!a.ctx_ || !b.ctx_) return !a.ctx_ && !b.ctx_;
  return a.ctx_->p() == b.ctx_->p() && a.v_ == b.v_;
}

Fp Fp::inv() const {
  if (!ctx_) throw std::logic_error("Fp::inv: null element");
  if (is_zero()) throw std::domain_error("Fp::inv: zero has no inverse");
  Fp r;
  r.ctx_ = ctx_;
  r.v_ = ctx_->inv_mod(v_);
  return r;
}

Fp Fp::pow(const BigInt& e) const {
  if (!ctx_) throw std::logic_error("Fp::pow: null element");
  if (e.is_negative()) return inv().pow(-e);
  Fp r;
  r.ctx_ = ctx_;
  r.v_ = ctx_->pow_mod(v_, e);
  return r;
}

int Fp::legendre() const {
  if (!ctx_) throw std::logic_error("Fp::legendre: null element");
  if (is_zero()) return 0;
  const BigInt e = (ctx_->p() - BigInt{1}) >> 1;
  const BigInt r = ctx_->pow_mod(v_, e);
  return r == BigInt{1} ? 1 : -1;
}

Fp Fp::sqrt() const {
  if (!ctx_) throw std::logic_error("Fp::sqrt: null element");
  if (is_zero()) return *this;
  if (legendre() != 1) throw std::domain_error("Fp::sqrt: not a quadratic residue");
  const BigInt& p = ctx_->p();
  BigInt root;
  if (ctx_->p_is_3_mod_4()) {
    root = ctx_->pow_mod(v_, (p + BigInt{1}) >> 2);
  } else {
    // Tonelli–Shanks. Write p-1 = q * 2^s with q odd.
    BigInt q = p - BigInt{1};
    std::size_t s = 0;
    while (!q.is_odd()) {
      q = q >> 1;
      ++s;
    }
    // Find a non-residue z deterministically.
    BigInt z{2};
    while (Fp(ctx_, z).legendre() != -1) z += BigInt{1};
    BigInt m = BigInt::from_u64(s);
    BigInt c = BigInt::mod_pow(z, q, p);
    BigInt t = BigInt::mod_pow(v_, q, p);
    BigInt r = BigInt::mod_pow(v_, (q + BigInt{1}) >> 1, p);
    while (t != BigInt{1}) {
      // Find least i with t^(2^i) = 1.
      BigInt tt = t;
      std::uint64_t i = 0;
      while (tt != BigInt{1}) {
        tt = BigInt::mod_mul(tt, tt, p);
        ++i;
      }
      BigInt b = c;
      for (std::uint64_t j = 0; j + i + 1 < m.low_u64(); ++j) b = BigInt::mod_mul(b, b, p);
      m = BigInt::from_u64(i);
      c = BigInt::mod_mul(b, b, p);
      t = BigInt::mod_mul(t, c, p);
      r = BigInt::mod_mul(r, b, p);
    }
    root = r;
  }
  // Canonical: the smaller of the two roots.
  const BigInt other = p - root;
  if (other < root) root = other;
  Fp out;
  out.ctx_ = ctx_;
  out.v_ = std::move(root);
  return out;
}

std::vector<Fp> batch_inv(std::span<const Fp> xs) {
  std::vector<Fp> out;
  if (xs.empty()) return out;
  for (const Fp& x : xs) {
    if (x.is_zero()) throw std::domain_error("batch_inv: zero element");
  }
  // prefix[i] = x_0 · … · x_i; one inversion of the total, then peel the
  // factors off back to front: x_i^{-1} = inv(x_0·…·x_i) · prefix[i-1].
  std::vector<Fp> prefix(xs.size());
  prefix[0] = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) prefix[i] = prefix[i - 1] * xs[i];
  Fp inv = prefix.back().inv();
  out.resize(xs.size());
  for (std::size_t i = xs.size(); i-- > 1;) {
    out[i] = inv * prefix[i - 1];
    inv = inv * xs[i];
  }
  out[0] = std::move(inv);
  for (Fp& x : prefix) x.wipe();
  return out;
}

}  // namespace sp::field
