// Prime field F_p arithmetic.
//
// Construction 1 runs Shamir secret sharing over F_p; Construction 2's
// pairing groups live on an elliptic curve over F_p. Elements carry a shared
// pointer to their modulus so mixed-field operations are caught early.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/bigint.hpp"
#include "crypto/drbg.hpp"

namespace sp::field {

using crypto::BigInt;
using crypto::Bytes;

/// Immutable modulus context shared by all elements of one field instance.
class FpCtx {
 public:
  /// p must be an odd prime (primality is the caller's responsibility; use
  /// BigInt::is_probable_prime when constructing parameters).
  explicit FpCtx(BigInt p);

  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] std::size_t byte_length() const { return byte_len_; }
  /// True when p ≡ 3 (mod 4) — enables the fast square-root path and the
  /// i² = −1 representation of F_{p²}.
  [[nodiscard]] bool p_is_3_mod_4() const { return p3mod4_; }

  /// Barrett reduction of x in [0, p²) — division-free, precomputed μ.
  /// Falls back to plain mod for out-of-range or negative inputs.
  [[nodiscard]] BigInt reduce(const BigInt& x) const;
  /// (a*b) mod p — Montgomery CIOS when p fits MontCtx, else Barrett.
  /// Operands must already be reduced.
  [[nodiscard]] BigInt mul_mod(const BigInt& a, const BigInt& b) const;
  /// base^exp mod p (exp >= 0) — fixed-window Montgomery when available,
  /// else Barrett square-and-multiply.
  [[nodiscard]] BigInt pow_mod(const BigInt& base, const BigInt& exp) const;
  /// a^{-1} mod p via Fermat (a^{p-2}) on the Montgomery path, extended
  /// Euclid otherwise. Throws std::domain_error on zero.
  [[nodiscard]] BigInt inv_mod(const BigInt& a) const;

  // Barrett-only paths, kept alive as the randomized-equivalence oracle for
  // the Montgomery rewrite (tests/crypto/test_montgomery.cpp).
  [[nodiscard]] BigInt mul_mod_barrett(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt pow_mod_barrett(const BigInt& base, const BigInt& exp) const;

  /// Montgomery context for p, if p fits (always true for the presets).
  [[nodiscard]] const std::optional<crypto::MontCtx>& mont() const { return mont_; }

 private:
  BigInt p_;
  BigInt mu_;             ///< floor(2^(2·shift) / p) for Barrett
  BigInt p_minus_2_;      ///< Fermat inversion exponent
  std::optional<crypto::MontCtx> mont_;
  std::size_t shift_ = 0; ///< bit shift = bit_length(p) rounded up usage
  std::size_t byte_len_;
  bool p3mod4_;
};

using FpCtxPtr = std::shared_ptr<const FpCtx>;

/// Makes a field context; validates p > 2 and p odd.
FpCtxPtr make_fp(BigInt p);

class Fp {
 public:
  Fp() = default;  // "null" element; usable only after assignment
  Fp(FpCtxPtr ctx, const BigInt& value);

  /// Additive / multiplicative identities.
  static Fp zero(const FpCtxPtr& ctx);
  static Fp one(const FpCtxPtr& ctx);
  /// Uniform random element.
  static Fp random(const FpCtxPtr& ctx, crypto::Drbg& rng);
  /// Uniform random non-zero element (for polynomial leading coefficients
  /// and blinding factors).
  static Fp random_nonzero(const FpCtxPtr& ctx, crypto::Drbg& rng);
  /// Maps arbitrary bytes into the field (mod p).
  static Fp from_bytes(const FpCtxPtr& ctx, std::span<const std::uint8_t> data);

  [[nodiscard]] const BigInt& value() const { return v_; }
  [[nodiscard]] const FpCtxPtr& ctx() const { return ctx_; }
  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }
  /// Fixed-width big-endian encoding (ctx byte length).
  [[nodiscard]] Bytes to_bytes() const;
  [[nodiscard]] std::string to_string() const { return v_.to_dec(); }

  friend Fp operator+(const Fp& a, const Fp& b);
  friend Fp operator-(const Fp& a, const Fp& b);
  friend Fp operator*(const Fp& a, const Fp& b);
  Fp operator-() const;
  friend bool operator==(const Fp& a, const Fp& b);
  friend bool operator!=(const Fp& a, const Fp& b) { return !(a == b); }

  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Fp inv() const;
  /// Exponentiation by a non-negative BigInt.
  [[nodiscard]] Fp pow(const BigInt& e) const;
  /// Legendre symbol: +1 quadratic residue, -1 non-residue, 0 for zero.
  [[nodiscard]] int legendre() const;
  /// Square root (Tonelli–Shanks; fast path when p ≡ 3 mod 4). Throws
  /// std::domain_error if no root exists. Returns the even-valued root's
  /// canonical choice (smaller of r, p−r).
  [[nodiscard]] Fp sqrt() const;

  /// Zeroises the element's value (for secret polynomial coefficients and
  /// share ordinates). The element becomes 0 in-field, residue-free.
  void wipe() noexcept { v_.wipe(); }

 private:
  void require_same_field(const Fp& other) const;

  FpCtxPtr ctx_;
  BigInt v_;  // canonical representative in [0, p)
};

/// Montgomery batch inversion: inverts every element for the cost of ONE
/// field inversion plus 3(n−1) multiplications (prefix products, invert the
/// total, back-substitute) — same trick as the Jacobian batch-normalization
/// in ec. Throws std::domain_error if any input is zero (nothing is
/// partially inverted). The prefix-product scratch is wiped before
/// returning, since callers feed it secret-derived values (Shamir share
/// abscissa differences). Returns {} for empty input.
std::vector<Fp> batch_inv(std::span<const Fp> xs);

}  // namespace sp::field
