#include "field/fp2.hpp"

#include <stdexcept>
#include <vector>

namespace sp::field {

Fp2::Fp2(Fp a, Fp b) : a_(std::move(a)), b_(std::move(b)) {
  if (!a_.ctx() || !b_.ctx()) throw std::invalid_argument("Fp2: null components");
}

Fp2::Fp2(const Fp& a) : a_(a), b_(Fp::zero(a.ctx())) {}

Fp2 Fp2::zero(const FpCtxPtr& ctx) { return Fp2(Fp::zero(ctx), Fp::zero(ctx)); }
Fp2 Fp2::one(const FpCtxPtr& ctx) { return Fp2(Fp::one(ctx), Fp::zero(ctx)); }

Fp2 Fp2::random(const FpCtxPtr& ctx, crypto::Drbg& rng) {
  return Fp2(Fp::random(ctx, rng), Fp::random(ctx, rng));
}

bool Fp2::is_one() const {
  return !a_.is_zero() && a_ == Fp::one(a_.ctx()) && b_.is_zero();
}

Bytes Fp2::to_bytes() const {
  Bytes out = a_.to_bytes();
  Bytes im = b_.to_bytes();
  out.insert(out.end(), im.begin(), im.end());
  return out;
}

Fp2 Fp2::from_bytes(const FpCtxPtr& ctx, std::span<const std::uint8_t> data) {
  const std::size_t half = ctx->byte_length();
  if (data.size() != 2 * half) throw std::invalid_argument("Fp2::from_bytes: bad length");
  return Fp2(Fp::from_bytes(ctx, data.first(half)), Fp::from_bytes(ctx, data.subspan(half)));
}

Fp2 operator+(const Fp2& x, const Fp2& y) { return Fp2(x.a_ + y.a_, x.b_ + y.b_); }
Fp2 operator-(const Fp2& x, const Fp2& y) { return Fp2(x.a_ - y.a_, x.b_ - y.b_); }

Fp2 operator*(const Fp2& x, const Fp2& y) {
  // (a + bi)(c + di) = (ac − bd) + (ad + bc)i, via 3 multiplications
  // (Karatsuba): ac, bd, (a+b)(c+d).
  const Fp ac = x.a_ * y.a_;
  const Fp bd = x.b_ * y.b_;
  const Fp cross = (x.a_ + x.b_) * (y.a_ + y.b_);
  return Fp2(ac - bd, cross - ac - bd);
}

Fp2 Fp2::operator-() const { return Fp2(-a_, -b_); }

bool operator==(const Fp2& x, const Fp2& y) { return x.a_ == y.a_ && x.b_ == y.b_; }

Fp2 Fp2::conj() const { return Fp2(a_, -b_); }

Fp Fp2::norm() const { return a_ * a_ + b_ * b_; }

Fp2 Fp2::inv() const {
  // (a + bi)^-1 = (a − bi) / (a² + b²).
  const Fp n = norm();
  if (n.is_zero()) throw std::domain_error("Fp2::inv: zero has no inverse");
  const Fp ninv = n.inv();
  return Fp2(a_ * ninv, -(b_ * ninv));
}

Fp2 Fp2::pow(const BigInt& e) const {
  if (e.is_negative()) return inv().pow(-e);
  const std::size_t nbits = e.bit_length();
  if (nbits == 0) return Fp2::one(a_.ctx());
  // Fixed-window w = 4: the final-exponentiation exponent h is hundreds of
  // bits, so trading 14 table multiplies for ~0.44·nbits running multiplies
  // wins well before that.
  std::vector<Fp2> table;
  table.reserve(15);
  table.push_back(*this);
  for (int d = 2; d <= 15; ++d) table.push_back(table.back() * *this);
  const std::size_t nnibs = (nbits + 3) / 4;
  const auto nibble = [&e](std::size_t k) -> unsigned {
    unsigned d = 0;
    for (unsigned b = 0; b < 4; ++b) d |= static_cast<unsigned>(e.bit(4 * k + b)) << b;
    return d;
  };
  const unsigned top = nibble(nnibs - 1);
  Fp2 result = top == 0 ? Fp2::one(a_.ctx()) : table[top - 1];
  for (std::size_t k = nnibs - 1; k-- > 0;) {
    result = result * result;
    result = result * result;
    result = result * result;
    result = result * result;
    const unsigned d = nibble(k);
    if (d != 0) result = result * table[d - 1];
  }
  return result;
}

}  // namespace sp::field
