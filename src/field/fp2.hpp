// Quadratic extension field F_{p²} = F_p[i] / (i² + 1), valid when
// p ≡ 3 (mod 4) so that −1 is a non-residue.
//
// The modified Tate pairing on the supersingular curve maps into F_{p²}:
// the distortion map sends (x, y) → (−x, i·y), and Miller-loop line values
// therefore live here. CP-ABE's e(g,g)^αs blinding factors are F_{p²}
// elements.
#pragma once

#include "field/fp.hpp"

namespace sp::field {

class Fp2 {
 public:
  Fp2() = default;
  /// a + b·i.
  Fp2(Fp a, Fp b);
  /// Embeds an F_p element (imaginary part zero).
  explicit Fp2(const Fp& a);

  static Fp2 zero(const FpCtxPtr& ctx);
  static Fp2 one(const FpCtxPtr& ctx);
  static Fp2 random(const FpCtxPtr& ctx, crypto::Drbg& rng);

  [[nodiscard]] const Fp& re() const { return a_; }
  [[nodiscard]] const Fp& im() const { return b_; }
  [[nodiscard]] bool is_zero() const { return a_.is_zero() && b_.is_zero(); }
  [[nodiscard]] bool is_one() const;
  /// Fixed-width encoding: re || im.
  [[nodiscard]] Bytes to_bytes() const;
  static Fp2 from_bytes(const FpCtxPtr& ctx, std::span<const std::uint8_t> data);

  friend Fp2 operator+(const Fp2& x, const Fp2& y);
  friend Fp2 operator-(const Fp2& x, const Fp2& y);
  friend Fp2 operator*(const Fp2& x, const Fp2& y);
  Fp2 operator-() const;
  friend bool operator==(const Fp2& x, const Fp2& y);
  friend bool operator!=(const Fp2& x, const Fp2& y) { return !(x == y); }

  /// Conjugate a − b·i.
  [[nodiscard]] Fp2 conj() const;
  /// Norm a² + b² ∈ F_p.
  [[nodiscard]] Fp norm() const;
  [[nodiscard]] Fp2 inv() const;
  [[nodiscard]] Fp2 pow(const BigInt& e) const;

 private:
  Fp a_;
  Fp b_;
};

}  // namespace sp::field
