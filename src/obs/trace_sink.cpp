#include "obs/trace_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <unordered_map>

namespace sp::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Full JSON string escaping (control chars included) — span names and attrs
/// are code identifiers by contract, but an exporter must not rely on that.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

struct SpanKey {
  std::uint64_t hi, lo, span;
  bool operator==(const SpanKey&) const = default;
};
struct SpanKeyHash {
  std::size_t operator()(const SpanKey& k) const {
    std::uint64_t h = k.hi * 0x9e3779b97f4a7c15ull;
    h ^= k.lo + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= k.span + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Children of each span, indexed by parent id, in record order.
std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children_of(
    const TraceData& trace) {
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> out;
  for (const SpanRecord& rec : trace.spans) out[rec.parent_id].push_back(&rec);
  return out;
}

/// Duration minus the union of child intervals, clamped at 0 — the span's
/// own contribution to the wall clock. Children running concurrently (pool
/// fan-out) overlap; merging intervals counts their cover once.
double self_time_ms(const SpanRecord& rec, const std::vector<const SpanRecord*>* children) {
  const double total = rec.duration_ms();
  if (children == nullptr || children->empty()) return total;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  intervals.reserve(children->size());
  for (const SpanRecord* child : *children) {
    const std::uint64_t lo = std::max(child->start_ns, rec.start_ns);
    const std::uint64_t hi = std::min(child->end_ns, rec.end_ns);
    if (hi > lo) intervals.emplace_back(lo, hi);
  }
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t covered = 0, cur_lo = 0, cur_hi = 0;
  bool open = false;
  for (const auto& [lo, hi] : intervals) {
    if (!open || lo > cur_hi) {
      if (open) covered += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  if (open) covered += cur_hi - cur_lo;
  const double self = total - static_cast<double>(covered) / 1e6;
  return self > 0 ? self : 0;
}

}  // namespace

std::string to_chrome_json(std::span<const TraceData> traces) {
  // Index every span so links can emit both flow endpoints even when the
  // source lives in a different trace of the same dump.
  std::unordered_map<SpanKey, const SpanRecord*, SpanKeyHash> index;
  for (const TraceData& trace : traces) {
    for (const SpanRecord& rec : trace.spans) {
      index.emplace(SpanKey{trace.id.hi, trace.id.lo, rec.span_id}, &rec);
    }
  }

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  std::uint64_t flow_id = 1;
  const auto emit = [&](const std::string& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += event;
  };
  for (const TraceData& trace : traces) {
    const std::string id_hex = trace.id.hex();
    for (const SpanRecord& rec : trace.spans) {
      std::string e = "  {\"name\": \"" + json_escape(rec.name) +
                      "\", \"cat\": \"sp\", \"ph\": \"X\", \"ts\": " +
                      num(static_cast<double>(rec.start_ns) / 1e3) +
                      ", \"dur\": " + num(static_cast<double>(rec.end_ns - rec.start_ns) / 1e3) +
                      ", \"pid\": 1, \"tid\": " + std::to_string(rec.thread) +
                      ", \"args\": {\"trace_id\": \"" + id_hex + "\", \"span_id\": " +
                      std::to_string(rec.span_id) + ", \"status\": \"" +
                      to_string(rec.status) + "\"";
      for (const auto& [key, value] : rec.attrs) {
        e += ", \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
      }
      e += "}}";
      emit(e);
      for (const SpanLink& link : rec.links) {
        const auto src = index.find(SpanKey{link.trace.hi, link.trace.lo, link.span});
        if (src == index.end()) continue;  // linked trace not in this dump
        const SpanRecord& s = *src->second;
        const std::string id = std::to_string(flow_id++);
        emit("  {\"name\": \"link\", \"cat\": \"sp.link\", \"ph\": \"s\", \"id\": " + id +
             ", \"ts\": " + num(static_cast<double>(s.end_ns) / 1e3) +
             ", \"pid\": 1, \"tid\": " + std::to_string(s.thread) + "}");
        emit("  {\"name\": \"link\", \"cat\": \"sp.link\", \"ph\": \"f\", \"bp\": \"e\", "
             "\"id\": " + id + ", \"ts\": " + num(static_cast<double>(rec.start_ns) / 1e3) +
             ", \"pid\": 1, \"tid\": " + std::to_string(rec.thread) + "}");
      }
    }
  }
  out += "\n]}\n";
  return out;
}

std::string to_folded_stacks(std::span<const TraceData> traces) {
  // Aggregate self-time by full name-path; weights are integer microseconds
  // (flamegraph.pl wants integral sample counts).
  std::map<std::string, std::uint64_t> weights;
  for (const TraceData& trace : traces) {
    const auto children = children_of(trace);
    const std::function<void(const SpanRecord&, const std::string&)> walk =
        [&](const SpanRecord& rec, const std::string& prefix) {
          const std::string path = prefix.empty() ? rec.name : prefix + ";" + rec.name;
          const auto kids = children.find(rec.span_id);
          const double self =
              self_time_ms(rec, kids != children.end() ? &kids->second : nullptr);
          weights[path] += static_cast<std::uint64_t>(self * 1000.0 + 0.5);
          if (kids != children.end()) {
            for (const SpanRecord* child : kids->second) walk(*child, path);
          }
        };
    const auto roots = children.find(0);
    if (roots != children.end()) {
      for (const SpanRecord* root : roots->second) walk(*root, "");
    }
  }
  std::string out;
  for (const auto& [path, weight] : weights) {
    out += path + " " + std::to_string(weight) + "\n";
  }
  return out;
}

std::vector<PhaseStat> phase_breakdown(std::span<const TraceData> traces) {
  struct Acc {
    std::vector<double> durations;
    double total = 0, self = 0, max = 0;
  };
  std::map<std::string, Acc> by_name;
  for (const TraceData& trace : traces) {
    const auto children = children_of(trace);
    for (const SpanRecord& rec : trace.spans) {
      Acc& acc = by_name[rec.name];
      const double d = rec.duration_ms();
      acc.durations.push_back(d);
      acc.total += d;
      acc.max = std::max(acc.max, d);
      const auto kids = children.find(rec.span_id);
      acc.self += self_time_ms(rec, kids != children.end() ? &kids->second : nullptr);
    }
  }
  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [name, acc] : by_name) {
    PhaseStat stat;
    stat.name = name;
    stat.count = acc.durations.size();
    stat.total_ms = acc.total;
    stat.self_ms = acc.self;
    stat.max_ms = acc.max;
    std::sort(acc.durations.begin(), acc.durations.end());
    stat.p50_ms = acc.durations[acc.durations.size() / 2];
    out.push_back(std::move(stat));
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseStat& a, const PhaseStat& b) { return a.self_ms > b.self_ms; });
  return out;
}

std::vector<std::size_t> slowest_traces(std::span<const TraceData> traces, std::size_t n) {
  std::vector<std::size_t> order(traces.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return traces[a].duration_ms > traces[b].duration_ms;
  });
  if (order.size() > n) order.resize(n);
  return order;
}

std::string format_trace_tree(const TraceData& trace) {
  std::string out = "trace " + trace.id.hex() + "  " + trace.root_name + "  " +
                    num(trace.duration_ms) + " ms" + (trace.errored ? "  [errored]" : "") + "\n";
  const auto children = children_of(trace);
  const std::function<void(const SpanRecord&, int)> walk = [&](const SpanRecord& rec,
                                                               int depth) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += rec.name + "  " + num(rec.duration_ms()) + " ms";
    if (rec.status != SpanStatus::kOk) out += std::string("  status=") + to_string(rec.status);
    for (const auto& [key, value] : rec.attrs) out += "  " + key + "=" + value;
    if (!rec.links.empty()) out += "  links=" + std::to_string(rec.links.size());
    out += "\n";
    const auto kids = children.find(rec.span_id);
    if (kids != children.end()) {
      for (const SpanRecord* child : kids->second) walk(*child, depth + 1);
    }
  };
  const auto roots = children.find(0);
  if (roots != children.end()) {
    for (const SpanRecord* root : roots->second) walk(*root, 1);
  }
  return out;
}

}  // namespace sp::obs
