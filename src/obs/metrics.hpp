// Process-wide observability: cheap thread-safe instruments for the serving
// core, with Prometheus text exposition and a JSON snapshot dump.
//
// The ROADMAP's "heavy traffic from millions of users" north star needs a
// continuous view of throughput, queue depth, phase latencies and failure
// rates — the per-request CostLedger in src/net/simnet.hpp decomposes ONE
// request, this layer aggregates ALL of them. The paper's own evaluation
// (Fig. 10) is exactly such a phase decomposition; related provider-mediated
// OSN access-control systems live or die on per-request provider overhead,
// so we measure ours on every request instead of only in one-off benches.
//
// Design constraints, in order:
//
//  * Hot-path increments never take a lock. Counters and histograms stripe
//    their state over cache-line-padded per-shard atomics indexed by a
//    thread-id hash; a relaxed fetch_add on an uncontended cache line is the
//    entire cost of `inc()`/`observe()`. Reads (exposition, percentiles)
//    merge the shards — they are monitoring-path, not serving-path.
//  * Near-zero when quiesced: `MetricsRegistry::set_enabled(false)` turns
//    every instrument into a single relaxed load + branch, which is what the
//    instrumentation-overhead bench (bench_concurrent_access) measures
//    against.
//  * Secret hygiene: metric names and label values are identifiers of code
//    paths, NEVER data. Registration rejects anything outside a conservative
//    charset/length so answer or key bytes cannot be smuggled into a label
//    value; docs/OBSERVABILITY.md states the contract, secret_lint scans
//    this directory like the rest of src/.
//  * Registration is rare and may lock (shared_mutex); callers cache the
//    returned reference (instruments have stable addresses for the life of
//    the registry) so serving code pays registration cost once.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::obs {

/// Label set for one time series: ordered (name, value) pairs. Values must
/// be short enum-like strings (scheme="c1", op="fetch") — never user data.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr std::size_t kShards = 16;
inline constexpr std::size_t kCacheLine = 64;

struct alignas(kCacheLine) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

/// Which stripe this thread's increments land on. Cached per thread: one
/// hash on first use, a TLS read afterwards.
std::size_t shard_index();

}  // namespace detail

class MetricsRegistry;

/// Monotonic counter. `inc` is wait-free (one relaxed fetch_add on a
/// thread-striped cache line); `value` merges the stripes.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>& enabled) : enabled_(enabled) {}
  void reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

  const std::atomic<bool>& enabled_;
  detail::PaddedU64 shards_[detail::kShards];
};

/// Up/down gauge (queue depths, record counts, bytes at rest). A single
/// atomic — gauges move orders of magnitude less often than counters.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) { add(-n); }

  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>& enabled) : enabled_(enabled) {}
  void reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>& enabled_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram (milliseconds). Bucket counts, the total
/// count and the sum (fixed-point microseconds) are striped per shard;
/// `observe` is three relaxed fetch_adds plus a bounds lookup. Percentiles
/// are bucket-interpolated estimates — resolution is the bucket width, which
/// the bound helpers below let callers pick per use.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value_ms);

  /// Trace-id exemplar: the captured trace behind the largest observation so
  /// far, so a latency outlier in a scrape points at a concrete span tree
  /// (OBSERVABILITY.md "Exemplars"). Lock-free seqlock slot; losing a race
  /// loses one candidate update, never tears a read.
  struct Exemplar {
    double value_ms = 0;
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
  };
  /// observe() + exemplar candidacy. A zero trace id observes without one.
  void observe_exemplar(double value_ms, std::uint64_t trace_hi, std::uint64_t trace_lo);
  /// The current exemplar, if any observation carried a trace id.
  [[nodiscard]] std::optional<Exemplar> exemplar() const;

  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t count() const;
  /// Sum of observed values in ms (microsecond-granular fixed point).
  [[nodiscard]] double sum_ms() const;
  [[nodiscard]] double max_ms() const;
  /// Bucket-interpolated percentile estimate, p in (0, 1]. Returns 0 when
  /// empty. The overflow bucket interpolates toward the recorded max, and
  /// every estimate is capped at the recorded max.
  [[nodiscard]] double percentile(double p) const;
  /// Upper bounds (strictly increasing); the +Inf overflow bucket is
  /// implicit. `bucket_counts()` returns bounds().size() + 1 entries.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Default serving-latency bounds: 50 µs .. 10 s, roughly ×2.5 steps.
  static std::vector<double> default_latency_bounds_ms();
  /// `count` bounds: start, start*factor, start*factor², ...
  static std::vector<double> exponential_bounds(double start, double factor, std::size_t count);
  /// `count` bounds: start, start+width, start+2*width, ...
  static std::vector<double> linear_bounds(double start, double width, std::size_t count);

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>& enabled, std::vector<double> bounds);
  void reset();

  struct alignas(detail::kCacheLine) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  ///< bounds+1 slots
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_micros{0};
  };

  const std::atomic<bool>& enabled_;
  std::vector<double> bounds_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> max_micros_{0};
  // Exemplar seqlock: writers CAS the sequence even→odd, store, release
  // odd→even+2; readers retry on odd or changed sequences.
  std::atomic<std::uint64_t> ex_seq_{0};
  std::atomic<std::uint64_t> ex_micros_{0};
  std::atomic<std::uint64_t> ex_hi_{0};
  std::atomic<std::uint64_t> ex_lo_{0};
};

/// Process-wide instrument registry. `global()` is the process singleton the
/// serving stack registers into; tests and benches may also construct
/// private registries. Registration (name + optional labels) is idempotent:
/// the same (name, labels) returns the same instrument, so any module can
/// say `registry.counter("dh_requests_total", ...)` without coordination.
/// Re-registering a name as a different kind (or a histogram with different
/// bounds) throws std::logic_error; help text is fixed by the first caller.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Intentionally leaked (never destroyed) so
  /// instruments referenced from static caches stay valid through shutdown.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "", const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds = Histogram::default_latency_bounds_ms(),
                       const Labels& labels = {});

  /// Flips every instrument registered here between recording and no-op.
  /// The no-op path (one relaxed load + branch) is what the instrumentation
  /// overhead bench compares against.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every instrument. For bench A/B runs and tests only — call it
  /// quiesced; concurrent increments may straddle the sweep.
  void reset();

  /// Number of registered time series (across all families).
  [[nodiscard]] std::size_t series_count() const;

  /// Registers a callback run at the start of every scrape (to_prometheus /
  /// to_json), outside the registry lock — for gauges derived from ambient
  /// state at read time (uptime, build info). Hooks must be cheap, must not
  /// throw, and may only touch instruments of THIS registry.
  void add_scrape_hook(std::function<void()> hook);

  /// Prometheus text exposition format (families sorted by name, series
  /// sorted by label key; numbers via %.10g so integers print bare).
  [[nodiscard]] std::string to_prometheus() const;
  /// JSON snapshot: {"enabled":…, "metrics":[{name,type,help,series:[…]}]}.
  /// Histogram series carry count/sum/max, p50/p95/p99 estimates and the
  /// cumulative buckets.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;              ///< histogram families only
    std::map<std::string, Series> series;    ///< key: canonical label string
  };

  Family& family_for(const std::string& name, const std::string& help, Kind kind,
                     const std::vector<double>* bounds) SP_REQUIRES(mutex_);
  void run_scrape_hooks() const SP_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{true};
  mutable sp::SharedMutex mutex_;  ///< guards the family map, not instrument state
  std::map<std::string, Family> families_ SP_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> scrape_hooks_ SP_GUARDED_BY(mutex_);
};

}  // namespace sp::obs
