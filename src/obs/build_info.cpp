#include "obs/build_info.hpp"

#include <chrono>

#include "obs/metrics.hpp"

// Fallbacks keep this file compiling standalone (clang-tidy, IDE parses)
// even when the CMake definitions are absent.
#ifndef SP_BUILD_VERSION
#define SP_BUILD_VERSION "unknown"
#endif
#ifndef SP_BUILD_GIT_SHA
#define SP_BUILD_GIT_SHA "unknown"
#endif
#ifndef SP_BUILD_COMPILER
#define SP_BUILD_COMPILER "unknown"
#endif
#ifndef SP_BUILD_SANITIZER
#define SP_BUILD_SANITIZER "none"
#endif

namespace sp::obs {

namespace {

/// Clamp an arbitrary build string to the registry's label-value contract
/// (1..64 chars of [A-Za-z0-9_.\-/:]) so registration can never throw on an
/// exotic compiler version or sanitizer spelling.
std::string sanitize_label(const char* raw) {
  std::string out;
  for (const char* p = raw; *p != '\0' && out.size() < 64; ++p) {
    const char c = *p;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == '-' || c == '/' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "unknown";
  return out;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      sanitize_label(SP_BUILD_VERSION),
      sanitize_label(SP_BUILD_GIT_SHA),
      sanitize_label(SP_BUILD_COMPILER),
      sanitize_label(SP_BUILD_SANITIZER),
  };
  return info;
}

void register_build_metrics(MetricsRegistry& registry) {
  process_start();  // pin "uptime zero" to registration, not first scrape
  const BuildInfo& info = build_info();
  Gauge& build = registry.gauge(
      "sp_build_info", "Build identity; value is always 1, identity lives in the labels",
      Labels{{"version", info.version},
             {"git_sha", info.git_sha},
             {"compiler", info.compiler},
             {"sanitizer", info.sanitizer}});
  build.set(1);
  Gauge& uptime =
      registry.gauge("sp_uptime_seconds", "Seconds since metrics registration in this process");
  registry.add_scrape_hook([&build, &uptime] {
    const auto elapsed = std::chrono::steady_clock::now() - process_start();
    uptime.set(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count());
    build.set(1);  // survive a bench-harness reset()
  });
}

}  // namespace sp::obs
