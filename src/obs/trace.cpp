#include "obs/trace.hpp"

#include <cstdio>
#include <functional>
#include <thread>

namespace sp::obs {

namespace {

/// Tracer instruments (docs/OBSERVABILITY.md catalog). Counters tell the
/// sampling story end to end: started >= sampled >= finished; kept/
/// overwritten split what the rings retained vs recycled.
struct TracerMetrics {
  obs::Counter& started;
  obs::Counter& sampled;
  obs::Counter& finished;
  obs::Counter& kept_error;
  obs::Counter& kept_slow;
  obs::Counter& overwritten_recent;
  obs::Counter& overwritten_kept;
  obs::Counter& stray_spans;
  obs::Histogram& root_ms;

  static TracerMetrics& get() {
    auto& reg = MetricsRegistry::global();
    static TracerMetrics m{
        reg.counter("sp_traces_started_total", "Requests that reached a start_trace call"),
        reg.counter("sp_traces_sampled_total", "Traces that passed the head-sampling draw"),
        reg.counter("sp_traces_finished_total", "Sampled traces whose root span ended"),
        reg.counter("sp_traces_kept_total", "Traces retained by a tail-based keep rule",
                    {{"reason", "error"}}),
        reg.counter("sp_traces_kept_total", "", {{"reason", "slow"}}),
        reg.counter("sp_traces_overwritten_total",
                    "Collected traces recycled by a newer one before a drain",
                    {{"ring", "recent"}}),
        reg.counter("sp_traces_overwritten_total", "", {{"ring", "kept"}}),
        reg.counter("sp_trace_spans_dropped_total",
                    "Spans that ended after their trace was already finished"),
        reg.histogram("sp_trace_root_ms", "Root-span duration of sampled traces"),
    };
    return m;
  }
};

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Per-thread id generator. Seeded once from a process-wide counter, the
/// thread id hash and the clock — uniqueness is what matters (trace ids are
/// correlation keys, not secrets; nothing is keyed from them).
std::uint64_t next_random_u64() {
  static std::atomic<std::uint64_t> seed_counter{0x5eed5eed5eed5eedull};
  thread_local std::uint64_t state =
      seed_counter.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) * 0x2545f4914f6cdd1dull) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
  return splitmix64(state);
}

std::uint32_t this_thread_key() {
  thread_local const std::uint32_t key = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffffu);
  return key;
}

TraceContext& current_slot() {
  thread_local TraceContext slot;
  return slot;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string format_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string TraceId::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

const char* to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kTransientFault:
      return "transient-fault";
    case SpanStatus::kTerminal:
      return "terminal";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Span

std::uint64_t reserve_span_id(const TraceContext& ctx) {
  if (!ctx.buf_) return 0;
  return ctx.buf_->next_span.fetch_add(1, std::memory_order_relaxed);
}

Span::Span(const TraceContext& parent, std::string_view name)
    : Span(parent, name, parent.sampled() ? Tracer::now_ns() : 0) {}

Span::Span(const TraceContext& parent, std::string_view name, std::uint64_t start_ns,
           std::uint64_t reserved_id) {
  if (!parent.sampled()) return;
  buf_ = parent.buf_;
  rec_.span_id = reserved_id != 0 ? reserved_id
                                  : buf_->next_span.fetch_add(1, std::memory_order_relaxed);
  rec_.parent_id = parent.span_;
  rec_.name.assign(name);
  rec_.start_ns = start_ns != 0 ? start_ns : Tracer::now_ns();
  rec_.thread = this_thread_key();
}

Span::Span(Span&& other) noexcept : buf_(std::move(other.buf_)), rec_(std::move(other.rec_)) {
  other.buf_.reset();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    buf_ = std::move(other.buf_);
    rec_ = std::move(other.rec_);
    other.buf_.reset();
  }
  return *this;
}

TraceContext Span::context() const {
  if (!buf_) return {};
  return TraceContext(buf_, rec_.span_id);
}

void Span::set_status(SpanStatus status) {
  if (!buf_) return;
  rec_.status = status;
  if (status != SpanStatus::kOk) buf_->errored.store(true, std::memory_order_relaxed);
}

void Span::add_attr(std::string_view key, std::string_view value) {
  if (!buf_) return;
  rec_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::add_attr(std::string_view key, std::int64_t value) {
  if (!buf_) return;
  rec_.attrs.emplace_back(std::string(key), format_u64(static_cast<std::uint64_t>(
                                                value < 0 ? 0 : value)));
}

void Span::add_attr(std::string_view key, double value) {
  if (!buf_) return;
  rec_.attrs.emplace_back(std::string(key), format_double(value));
}

void Span::add_link(TraceId trace, std::uint64_t span) {
  if (!buf_) return;
  rec_.links.push_back(SpanLink{trace, span});
}

void Span::end() {
  if (!buf_) return;
  std::shared_ptr<detail::TraceBuffer> buf = std::move(buf_);
  buf_.reset();
  rec_.end_ns = Tracer::now_ns();
  const bool is_root = rec_.parent_id == 0;
  if (!is_root && buf->finished.load(std::memory_order_acquire)) {
    // The root already sealed this trace (a straggler from a queue that
    // outlived its request) — recording it would race the publish.
    TracerMetrics::get().stray_spans.inc();
    return;
  }
  {
    const sp::MutexLock lock(buf->mutex);
    buf->spans.push_back(std::move(rec_));
  }
  if (is_root) {
    buf->finished.store(true, std::memory_order_release);
    Tracer::global().finish(buf);
  }
}

// ---------------------------------------------------------- ContextGuard

ContextGuard::ContextGuard(TraceContext ctx) : prev_(std::move(current_slot())) {
  current_slot() = std::move(ctx);
}

ContextGuard::~ContextGuard() { current_slot() = std::move(prev_); }

// ---------------------------------------------------------------- Tracer

/// One collector ring: slots hold finished traces, newest-wins. Producers
/// exchange a new trace in (and delete whatever they displaced); drains
/// exchange nullptr in. Both sides are a single atomic RMW — no locks, no
/// waiting, which is what lets the hot path publish from any thread while a
/// scrape drains concurrently.
struct Tracer::Ring {
  explicit Ring(std::size_t slot_count)
      : mask(slot_count - 1), slots(std::make_unique<std::atomic<TraceData*>[]>(slot_count)) {
    for (std::size_t i = 0; i <= mask; ++i) slots[i].store(nullptr, std::memory_order_relaxed);
  }
  ~Ring() {
    for (std::size_t i = 0; i <= mask; ++i) delete slots[i].load(std::memory_order_relaxed);
  }

  /// Returns true when the publish displaced (and deleted) an undrained
  /// trace — the overwrite the drop counters report.
  bool publish(TraceData* data) {
    const std::size_t idx = head.fetch_add(1, std::memory_order_relaxed) & mask;
    TraceData* old = slots[idx].exchange(data, std::memory_order_acq_rel);
    delete old;
    return old != nullptr;
  }

  void drain_into(std::vector<TraceData>& out) {
    for (std::size_t i = 0; i <= mask; ++i) {
      TraceData* data = slots[i].exchange(nullptr, std::memory_order_acq_rel);
      if (data != nullptr) {
        out.push_back(std::move(*data));
        delete data;
      }
    }
  }

  const std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  std::unique_ptr<std::atomic<TraceData*>[]> slots;
};

struct Tracer::ThreadRings {
  ThreadRings(std::size_t recent_slots, std::size_t kept_slots)
      : recent(recent_slots), kept(kept_slots) {}
  Ring recent;
  Ring kept;
};

Tracer::Tracer() = default;

Tracer& Tracer::global() {
  // Leaked like MetricsRegistry::global(): spans ending during static
  // teardown must find a live collector.
  static Tracer* const instance = new Tracer();
  return *instance;
}

void Tracer::configure(const TracerConfig& config) {
  double p = config.sample_probability;
  if (!(p > 0)) p = 0;
  if (p >= 1) {
    sample_threshold_.store(~0ull, std::memory_order_relaxed);
  } else {
    sample_threshold_.store(static_cast<std::uint64_t>(p * 18446744073709551615.0),
                            std::memory_order_relaxed);
  }
  keep_slow_percentile_.store(config.keep_slow_percentile, std::memory_order_relaxed);
  keep_slow_min_count_.store(config.keep_slow_min_count, std::memory_order_relaxed);
  ring_slots_.store(round_up_pow2(std::max<std::size_t>(1, config.ring_slots)),
                    std::memory_order_relaxed);
  kept_slots_.store(round_up_pow2(std::max<std::size_t>(1, config.kept_slots)),
                    std::memory_order_relaxed);
}

TracerConfig Tracer::config() const {
  TracerConfig out;
  const std::uint64_t thr = sample_threshold_.load(std::memory_order_relaxed);
  out.sample_probability =
      thr == ~0ull ? 1.0 : static_cast<double>(thr) / 18446744073709551615.0;
  out.keep_slow_percentile = keep_slow_percentile_.load(std::memory_order_relaxed);
  out.keep_slow_min_count = keep_slow_min_count_.load(std::memory_order_relaxed);
  out.ring_slots = ring_slots_.load(std::memory_order_relaxed);
  out.kept_slots = kept_slots_.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

TraceContext Tracer::current() { return current_slot(); }

Span Tracer::start_trace(std::string_view name) {
  if (!enabled_.load(std::memory_order_relaxed)) return {};
  TracerMetrics& metrics = TracerMetrics::get();
  metrics.started.inc();
  const TraceId id{next_random_u64(), next_random_u64()};
  const std::uint64_t thr = sample_threshold_.load(std::memory_order_relaxed);
  // The id's low word is uniform, so it doubles as the sampling draw — the
  // decision replays from the id alone.
  if (thr != ~0ull && id.lo >= thr) return {};
  metrics.sampled.inc();
  auto buf = std::make_shared<detail::TraceBuffer>();
  buf->id = id;
  Span root;
  root.buf_ = buf;
  root.rec_.span_id = 1;
  root.rec_.parent_id = 0;
  root.rec_.name.assign(name);
  root.rec_.start_ns = now_ns();
  root.rec_.thread = this_thread_key();
  return root;
}

Span Tracer::start_trace_forced(std::string_view name) {
  if (!enabled_.load(std::memory_order_relaxed)) return {};
  TracerMetrics& metrics = TracerMetrics::get();
  metrics.started.inc();
  metrics.sampled.inc();
  auto buf = std::make_shared<detail::TraceBuffer>();
  buf->id = TraceId{next_random_u64(), next_random_u64()};
  Span root;
  root.buf_ = buf;
  root.rec_.span_id = 1;
  root.rec_.parent_id = 0;
  root.rec_.name.assign(name);
  root.rec_.start_ns = now_ns();
  root.rec_.thread = this_thread_key();
  return root;
}

Tracer::ThreadRings& Tracer::rings_for_this_thread() {
  thread_local ThreadRings* rings = nullptr;
  if (rings == nullptr) {
    auto fresh = std::make_unique<ThreadRings>(ring_slots_.load(std::memory_order_relaxed),
                                               kept_slots_.load(std::memory_order_relaxed));
    rings = fresh.get();
    const sp::MutexLock lock(rings_mutex_);
    rings_.push_back(std::move(fresh));
  }
  return *rings;
}

void Tracer::finish(const std::shared_ptr<detail::TraceBuffer>& buf) {
  TracerMetrics& metrics = TracerMetrics::get();
  metrics.finished.inc();

  auto data = std::make_unique<TraceData>();
  data->id = buf->id;
  data->errored = buf->errored.load(std::memory_order_relaxed);
  {
    const sp::MutexLock lock(buf->mutex);
    data->spans = std::move(buf->spans);
  }
  // The root is the span this thread just appended — finish order puts it
  // last, but a straggler-free guarantee is not needed to find it.
  for (const SpanRecord& rec : data->spans) {
    if (rec.parent_id == 0) {
      data->root_name = rec.name;
      data->duration_ms = rec.duration_ms();
      break;
    }
  }
  metrics.root_ms.observe(data->duration_ms);

  // Tail-based keep rules: errored traces always survive; slow traces once
  // the root-latency histogram has enough mass for a meaningful p99.
  bool keep = false;
  if (data->errored) {
    metrics.kept_error.inc();
    keep = true;
  } else {
    const std::uint64_t min_count = keep_slow_min_count_.load(std::memory_order_relaxed);
    if (min_count != 0 && metrics.root_ms.count() >= min_count) {
      const double threshold =
          metrics.root_ms.percentile(keep_slow_percentile_.load(std::memory_order_relaxed));
      if (threshold > 0 && data->duration_ms >= threshold) {
        metrics.kept_slow.inc();
        keep = true;
      }
    }
  }

  ThreadRings& rings = rings_for_this_thread();
  Ring& target = keep ? rings.kept : rings.recent;
  if (target.publish(data.release())) {
    (keep ? metrics.overwritten_kept : metrics.overwritten_recent).inc();
  }
}

std::vector<TraceData> Tracer::drain() {
  std::vector<TraceData> out;
  const sp::MutexLock lock(rings_mutex_);
  for (const auto& rings : rings_) rings->kept.drain_into(out);
  for (const auto& rings : rings_) rings->recent.drain_into(out);
  return out;
}

}  // namespace sp::obs
