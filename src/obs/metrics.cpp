#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/build_info.hpp"

namespace sp::obs {

namespace detail {

std::size_t shard_index() {
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return idx;
}

}  // namespace detail

namespace {

/// %.10g keeps integers bare ("3", not "3.000000") and doubles readable in
/// both exposition formats.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

bool name_char_ok(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  if (alpha || c == '_' || c == ':') return true;
  return !first && c >= '0' && c <= '9';
}

/// Metric/label-name charset: Prometheus identifier rules. Tight on purpose
/// — names are code-path identifiers, not data.
void validate_name(const std::string& name, const char* what) {
  if (name.empty() || name.size() > 120) {
    throw std::invalid_argument(std::string(what) + " must be 1..120 chars: '" + name + "'");
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!name_char_ok(name[i], i == 0)) {
      throw std::invalid_argument(std::string(what) + " has invalid char: '" + name + "'");
    }
  }
}

/// Label values are enum-like path identifiers (scheme="c1",
/// phase="c1.verify_hashes"). The charset excludes quotes, backslashes and
/// whitespace entirely, and the length cap makes smuggling payload bytes
/// into a label value a registration-time error — part of the secret-hygiene
/// contract (docs/OBSERVABILITY.md).
void validate_label_value(const std::string& value) {
  if (value.empty() || value.size() > 64) {
    throw std::invalid_argument("label value must be 1..64 chars: '" + value + "'");
  }
  for (const char c : value) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == '-' || c == '/' || c == ':';
    if (!ok) throw std::invalid_argument("label value has invalid char: '" + value + "'");
  }
}

/// Canonical series id: labels sorted by name, rendered `a="x",b="y"`.
/// Doubles as the exposition body inside {…}.
std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& label : labels) {
    if (!out.empty()) out.push_back(',');
    out += label.first + "=\"" + label.second + "\"";
  }
  return out;
}

std::string json_escape(const std::string& s) {
  // Registration-time charsets exclude everything needing escapes from
  // names and label values, but help strings are free text and the emitter
  // must stay valid JSON regardless — full RFC 8259 escaping, control
  // characters included.
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Prometheus text-format HELP escaping: backslash and newline only (the
/// spec leaves quotes bare outside label values).
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double-quote and newline.
/// Registration rejects these characters today; escaping at emission keeps
/// the exposition well-formed even if the charset is ever widened.
std::string prom_escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Exposition-side label body `a="x",b="y"` with escaped values. Distinct
/// from canonical_labels (the raw map key fixed at registration).
std::string prom_label_body(const Labels& labels) {
  std::string out;
  for (const auto& label : labels) {
    if (!out.empty()) out.push_back(',');
    out += label.first + "=\"" + prom_escape_label_value(label.second) + "\"";
  }
  return out;
}

std::string hex32(std::uint64_t hi, std::uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(const std::atomic<bool>& enabled, std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: bounds must be non-empty");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) || (i > 0 && bounds_[i] <= bounds_[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must be finite and strictly increasing");
    }
  }
  shards_ = std::make_unique<Shard[]>(detail::kShards);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    shards_[s].buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value_ms) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (!(value_ms >= 0)) value_ms = 0;  // also catches NaN
  // Bucket i holds v <= bounds_[i] (Prometheus `le`); past the last bound is
  // the implicit +Inf bucket.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value_ms) - bounds_.begin());
  const auto micros = static_cast<std::uint64_t>(std::llround(value_ms * 1000.0));
  Shard& s = shards_[detail::shard_index()];
  s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_micros.fetch_add(micros, std::memory_order_relaxed);
  std::uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros, std::memory_order_relaxed)) {
  }
}

void Histogram::observe_exemplar(double value_ms, std::uint64_t trace_hi,
                                 std::uint64_t trace_lo) {
  observe(value_ms);
  if ((trace_hi | trace_lo) == 0) return;
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (!(value_ms >= 0)) value_ms = 0;
  const auto micros = static_cast<std::uint64_t>(std::llround(value_ms * 1000.0));
  // Keep the largest observation: exemplars exist to explain the outlier a
  // scrape's max/p99 shows, so smaller candidates don't displace it.
  if (micros < ex_micros_.load(std::memory_order_relaxed)) return;
  std::uint64_t seq = ex_seq_.load(std::memory_order_relaxed);
  if ((seq & 1) != 0) return;  // concurrent writer owns the slot; drop this candidate
  if (!ex_seq_.compare_exchange_strong(seq, seq + 1, std::memory_order_acquire)) return;
  ex_micros_.store(micros, std::memory_order_relaxed);
  ex_hi_.store(trace_hi, std::memory_order_relaxed);
  ex_lo_.store(trace_lo, std::memory_order_relaxed);
  ex_seq_.store(seq + 2, std::memory_order_release);
}

std::optional<Histogram::Exemplar> Histogram::exemplar() const {
  for (int tries = 0; tries < 16; ++tries) {
    const std::uint64_t s1 = ex_seq_.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) continue;
    const std::uint64_t micros = ex_micros_.load(std::memory_order_relaxed);
    const std::uint64_t hi = ex_hi_.load(std::memory_order_relaxed);
    const std::uint64_t lo = ex_lo_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (ex_seq_.load(std::memory_order_relaxed) != s1) continue;
    if ((hi | lo) == 0) return std::nullopt;
    return Exemplar{static_cast<double>(micros) / 1000.0, hi, lo};
  }
  return std::nullopt;  // writer storm; a later scrape will win
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum_ms() const {
  std::uint64_t micros = 0;
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    micros += shards_[s].sum_micros.load(std::memory_order_relaxed);
  }
  return static_cast<double>(micros) / 1000.0;
}

double Histogram::max_ms() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) / 1000.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::percentile(double p) const {
  if (!(p > 0)) p = 0.0;
  if (p > 1) p = 1.0;
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  double cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cum + static_cast<double>(counts[b]);
    if (next >= target && counts[b] > 0) {
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      // The +Inf bucket interpolates toward the recorded max so a tail
      // estimate stays finite and bounded by something actually observed.
      const double upper = b < bounds_.size() ? bounds_[b] : std::max(max_ms(), lower);
      const double frac = (target - cum) / static_cast<double>(counts[b]);
      const double est = lower + frac * (upper - lower);
      // Never report above something actually observed (p100 of a bucket
      // otherwise returns the bucket's upper bound, not the true max).
      const double cap = max_ms();
      return cap > 0 && est > cap ? cap : est;
    }
    cum = next;
  }
  return max_ms();
}

void Histogram::reset() {
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    shards_[s].count.store(0, std::memory_order_relaxed);
    shards_[s].sum_micros.store(0, std::memory_order_relaxed);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
  max_micros_.store(0, std::memory_order_relaxed);
  // reset() is documented quiesced-only, so a plain sweep of the exemplar
  // slot (leaving the sequence even) is safe.
  ex_micros_.store(0, std::memory_order_relaxed);
  ex_hi_.store(0, std::memory_order_relaxed);
  ex_lo_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, std::size_t count) {
  if (!(start > 0) || !(factor > 1) || count == 0) {
    throw std::invalid_argument("exponential_bounds: start > 0, factor > 1, count >= 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) out.push_back(v);
  return out;
}

std::vector<double> Histogram::linear_bounds(double start, double width, std::size_t count) {
  if (!(width > 0) || count == 0) {
    throw std::invalid_argument("linear_bounds: width > 0, count >= 1");
  }
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(start + static_cast<double>(i) * width);
  return out;
}

// ----------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instruments are cached by reference in static
  // structs across the serving stack; a destructed registry would turn
  // shutdown-path increments into use-after-free. The global registry also
  // carries the process identity series (sp_build_info, sp_uptime_seconds)
  // so every exposition from a real process is attributable to a build.
  static MetricsRegistry* const instance = [] {
    auto* r = new MetricsRegistry();
    register_build_metrics(*r);
    return r;
  }();
  return *instance;
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name,
                                                     const std::string& help, Kind kind,
                                                     const std::vector<double>* bounds) {
  // Caller holds the unique lock.
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
    if (bounds != nullptr) fam.bounds = *bounds;
    return fam;
  }
  if (fam.kind != kind) {
    throw std::logic_error("MetricsRegistry: '" + name + "' already registered as another kind");
  }
  if (bounds != nullptr && fam.bounds != *bounds) {
    throw std::logic_error("MetricsRegistry: '" + name + "' re-registered with different bounds");
  }
  return fam;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  validate_name(name, "metric name");
  for (const auto& label : labels) {
    validate_name(label.first, "label name");
    validate_label_value(label.second);
  }
  const std::string id = canonical_labels(labels);
  {
    const sp::SharedLock lock(mutex_);
    const auto fit = families_.find(name);
    if (fit != families_.end() && fit->second.kind == Kind::kCounter) {
      const auto sit = fit->second.series.find(id);
      if (sit != fit->second.series.end()) return *sit->second.counter;
    }
  }
  const sp::UniqueLock lock(mutex_);
  Family& fam = family_for(name, help, Kind::kCounter, nullptr);
  Series& series = fam.series[id];
  if (!series.counter) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.counter.reset(new Counter(enabled_));
  }
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  validate_name(name, "metric name");
  for (const auto& label : labels) {
    validate_name(label.first, "label name");
    validate_label_value(label.second);
  }
  const std::string id = canonical_labels(labels);
  {
    const sp::SharedLock lock(mutex_);
    const auto fit = families_.find(name);
    if (fit != families_.end() && fit->second.kind == Kind::kGauge) {
      const auto sit = fit->second.series.find(id);
      if (sit != fit->second.series.end()) return *sit->second.gauge;
    }
  }
  const sp::UniqueLock lock(mutex_);
  Family& fam = family_for(name, help, Kind::kGauge, nullptr);
  Series& series = fam.series[id];
  if (!series.gauge) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.gauge.reset(new Gauge(enabled_));
  }
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds, const Labels& labels) {
  validate_name(name, "metric name");
  for (const auto& label : labels) {
    validate_name(label.first, "label name");
    validate_label_value(label.second);
  }
  const std::string id = canonical_labels(labels);
  {
    const sp::SharedLock lock(mutex_);
    const auto fit = families_.find(name);
    if (fit != families_.end() && fit->second.kind == Kind::kHistogram &&
        fit->second.bounds == bounds) {
      const auto sit = fit->second.series.find(id);
      if (sit != fit->second.series.end()) return *sit->second.histogram;
    }
  }
  const sp::UniqueLock lock(mutex_);
  Family& fam = family_for(name, help, Kind::kHistogram, &bounds);
  Series& series = fam.series[id];
  if (!series.histogram) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.histogram.reset(new Histogram(enabled_, std::move(bounds)));
  }
  return *series.histogram;
}

void MetricsRegistry::reset() {
  const sp::UniqueLock lock(mutex_);
  for (auto& [name, fam] : families_) {
    for (auto& [id, series] : fam.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

void MetricsRegistry::add_scrape_hook(std::function<void()> hook) {
  const sp::UniqueLock lock(mutex_);
  scrape_hooks_.push_back(std::move(hook));
}

void MetricsRegistry::run_scrape_hooks() const {
  // Copy under the lock, run outside it: hooks set gauges of this registry,
  // and instrument lookups re-take mutex_.
  std::vector<std::function<void()>> hooks;
  {
    const sp::SharedLock lock(mutex_);
    hooks = scrape_hooks_;
  }
  for (const auto& hook : hooks) hook();
}

std::size_t MetricsRegistry::series_count() const {
  const sp::SharedLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, fam] : families_) total += fam.series.size();
  return total;
}

std::string MetricsRegistry::to_prometheus() const {
  run_scrape_hooks();
  const sp::SharedLock lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + prom_escape_help(fam.help) + "\n";
    out += "# TYPE " + name + " ";
    out += fam.kind == Kind::kCounter ? "counter" : fam.kind == Kind::kGauge ? "gauge"
                                                                             : "histogram";
    out += "\n";
    for (const auto& [id, series] : fam.series) {
      const std::string body = prom_label_body(series.labels);
      const std::string braces = body.empty() ? "" : "{" + body + "}";
      if (fam.kind == Kind::kCounter) {
        out += name + braces + " " + std::to_string(series.counter->value()) + "\n";
      } else if (fam.kind == Kind::kGauge) {
        out += name + braces + " " + std::to_string(series.gauge->value()) + "\n";
      } else {
        const Histogram& h = *series.histogram;
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
          cum += counts[b];
          const std::string le = b < h.bounds().size() ? num(h.bounds()[b]) : "+Inf";
          std::string lbl = body;
          if (!lbl.empty()) lbl += ",";
          lbl += "le=\"" + le + "\"";
          out += name + "_bucket{" + lbl + "} " + std::to_string(cum) + "\n";
        }
        out += name + "_sum" + braces + " " + num(h.sum_ms()) + "\n";
        out += name + "_count" + braces + " " + std::to_string(h.count()) + "\n";
        // The classic text format has no exemplar syntax (that's OpenMetrics);
        // emit the trace pointer as a comment so scrapes stay parseable while
        // a human (or sp_trace grep) can still jump from metric to trace.
        if (const auto ex = h.exemplar()) {
          out += "# exemplar " + name + braces + " trace_id=" +
                 hex32(ex->trace_hi, ex->trace_lo) + " value_ms=" + num(ex->value_ms) + "\n";
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  run_scrape_hooks();
  const sp::SharedLock lock(mutex_);
  std::string out = "{\n  \"enabled\": ";
  out += enabled() ? "true" : "false";
  out += ",\n  \"metrics\": [";
  bool first_family = true;
  for (const auto& [name, fam] : families_) {
    out += first_family ? "\n" : ",\n";
    first_family = false;
    out += "    {\"name\": \"" + name + "\", \"type\": \"";
    out += fam.kind == Kind::kCounter ? "counter" : fam.kind == Kind::kGauge ? "gauge"
                                                                             : "histogram";
    out += "\", \"help\": \"" + json_escape(fam.help) + "\", \"series\": [";
    bool first_series = true;
    for (const auto& [id, series] : fam.series) {
      out += first_series ? "\n" : ",\n";
      first_series = false;
      out += "      {\"labels\": {";
      bool first_label = true;
      for (const auto& label : series.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"" + json_escape(label.first) + "\": \"" + json_escape(label.second) + "\"";
      }
      out += "}";
      if (fam.kind == Kind::kCounter) {
        out += ", \"value\": " + std::to_string(series.counter->value()) + "}";
      } else if (fam.kind == Kind::kGauge) {
        out += ", \"value\": " + std::to_string(series.gauge->value()) + "}";
      } else {
        const Histogram& h = *series.histogram;
        out += ", \"count\": " + std::to_string(h.count());
        out += ", \"sum_ms\": " + num(h.sum_ms());
        out += ", \"max_ms\": " + num(h.max_ms());
        out += ", \"p50_ms\": " + num(h.percentile(0.50));
        out += ", \"p95_ms\": " + num(h.percentile(0.95));
        out += ", \"p99_ms\": " + num(h.percentile(0.99));
        if (const auto ex = h.exemplar()) {
          out += ", \"exemplar\": {\"trace_id\": \"" + hex32(ex->trace_hi, ex->trace_lo) +
                 "\", \"value_ms\": " + num(ex->value_ms) + "}";
        }
        out += ", \"buckets\": [";
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
          cum += counts[b];
          if (b > 0) out += ", ";
          out += "{\"le\": ";
          out += b < h.bounds().size() ? num(h.bounds()[b]) : std::string("\"+Inf\"");
          out += ", \"count\": " + std::to_string(cum) + "}";
        }
        out += "]}";
      }
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace sp::obs
