// TraceSpan — RAII phase scope for the serving stack.
//
// One span = one named phase of one request (c1.verify_hashes,
// c2.keygen, dh.fetch, ...). On destruction (or explicit stop()) the
// measured wall time goes to:
//
//  * the phase's registry Histogram — the process-wide aggregate view —
//    unless the registry is disabled, and
//  * optionally the request's CostLedger via add_local_measured(), which is
//    protocol cost accounting (the Fig. 10 decomposition) and therefore
//    recorded whether or not metrics are enabled.
//
// The ledger hookup is type-erased through a captureless lambda so this
// header depends only on obs — sp::net keeps not knowing about obs, and any
// type with add_local_measured(double) works (tests use a plain struct).
//
// A histogram-only span against a disabled registry skips the clock reads
// entirely: that is the "no-op registry" cost the overhead bench measures.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace sp::obs {

class TraceSpan {
 public:
  /// Histogram-only phase (SP-side or network-side work that the receiver's
  /// ledger does not account as local time).
  explicit TraceSpan(Histogram& hist) : hist_(&hist), active_(hist.enabled()) {
    if (active_) start_ = Clock::now();
  }

  /// Phase that also charges the request's ledger. Always times: the ledger
  /// is per-request protocol accounting, not metrics.
  template <typename Ledger>
  TraceSpan(Histogram& hist, Ledger& ledger)
      : hist_(&hist),
        sink_(&ledger),
        add_ms_([](void* sink, double ms) { static_cast<Ledger*>(sink)->add_local_measured(ms); }),
        active_(true) {
    start_ = Clock::now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { stop(); }

  /// Ends the span early (idempotent). Returns the measured wall ms, 0 when
  /// the span never armed.
  double stop() {
    if (!active_) return 0;
    active_ = false;
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
    hist_->observe(ms);
    if (add_ms_ != nullptr) add_ms_(sink_, ms);
    return ms;
  }

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* hist_;
  void* sink_ = nullptr;
  void (*add_ms_)(void*, double) = nullptr;
  bool active_;
  Clock::time_point start_{};
};

}  // namespace sp::obs
