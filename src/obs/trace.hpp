// Request-lifecycle tracing for the serving stack.
//
// Two layers live here:
//
//  * TraceSpan — the PR 4 RAII phase timer feeding a Histogram (and
//    optionally a request CostLedger). It is the flat, aggregate view.
//  * The span-tree tracer (PR 9) — 128-bit trace ids, parent/child spans
//    with attributes/status/links, a request-scoped TraceContext that is
//    propagated explicitly through Session/ThreadPool/VerifyQueue/WAL, and
//    a lock-free per-thread ring collector with head-based sampling plus
//    tail-based keep rules (errored and slowest-p99 traces survive even
//    when the recent ring wraps). docs/OBSERVABILITY.md has the span
//    catalog; DESIGN.md §12 the architecture.
//
// Cost model, in order of importance:
//
//  * Tracing disabled (the default): Tracer::start_trace is one relaxed
//    load; every Span/TraceContext operation on an unsampled context is a
//    null-pointer check. No clock reads, no allocation — the ≈0% arm of
//    the bench A/B.
//  * Head-unsampled request (the 99% at 1% sampling): one relaxed load plus
//    one thread-local PRNG step; everything downstream no-ops as above.
//  * Sampled request: spans append to a per-request buffer under its own
//    mutex (uncontended except when VerifyQueue workers finish jobs for the
//    same request); the finished trace is published to a per-thread ring
//    with a single atomic exchange — the collector itself never locks on
//    the producer side.
//
// Secret hygiene: span names and attribute keys/values are code-path
// identifiers and small numbers, NEVER payload data — same contract as
// metric labels (docs/OBSERVABILITY.md), enforced by review + sp_lint's
// secret-ident rules over this directory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::obs {

class TraceSpan {
 public:
  /// Histogram-only phase (SP-side or network-side work that the receiver's
  /// ledger does not account as local time).
  explicit TraceSpan(Histogram& hist) : hist_(&hist), active_(hist.enabled()) {
    if (active_) start_ = Clock::now();
  }

  /// Phase that also charges the request's ledger. Always times: the ledger
  /// is per-request protocol accounting, not metrics.
  template <typename Ledger>
  TraceSpan(Histogram& hist, Ledger& ledger)
      : hist_(&hist),
        sink_(&ledger),
        add_ms_([](void* sink, double ms) { static_cast<Ledger*>(sink)->add_local_measured(ms); }),
        active_(true) {
    start_ = Clock::now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { stop(); }

  /// Ends the span early (idempotent). Returns the measured wall ms, 0 when
  /// the span never armed.
  double stop() {
    if (!active_) return 0;
    active_ = false;
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
    hist_->observe(ms);
    if (add_ms_ != nullptr) add_ms_(sink_, ms);
    return ms;
  }

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* hist_;
  void* sink_ = nullptr;
  void (*add_ms_)(void*, double) = nullptr;
  bool active_;
  Clock::time_point start_{};
};

// ======================================================================
// Span-tree tracer
// ======================================================================

/// 128-bit trace identifier. {0,0} is the reserved invalid id.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool valid() const { return (hi | lo) != 0; }
  /// 32 lowercase hex digits (OpenTelemetry-style).
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const TraceId&, const TraceId&) = default;
};

/// Span outcome, mirroring the fault model's transient/terminal split
/// (net::is_transient): kTransientFault spans are retried by the layer
/// above, kTerminal spans end the request.
enum class SpanStatus : std::uint8_t {
  kOk = 0,
  kTransientFault = 1,
  kTerminal = 2,
};

[[nodiscard]] const char* to_string(SpanStatus status);

/// Causal reference to a span in this or another trace (a WAL group-commit
/// batch links every contributing request's span; a help-drained verify job
/// links the foreign runner's span).
struct SpanLink {
  TraceId trace;
  std::uint64_t span = 0;

  friend bool operator==(const SpanLink&, const SpanLink&) = default;
};

/// One finished span. Timestamps are steady-clock nanoseconds (a process-
/// local monotonic timeline; dumps are self-consistent, not wall-clock).
struct SpanRecord {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;  ///< hashed thread id (grouping key, not a TID)
  SpanStatus status = SpanStatus::kOk;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<SpanLink> links;

  [[nodiscard]] double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// One completed trace as drained from the collector.
struct TraceData {
  TraceId id;
  std::string root_name;
  double duration_ms = 0;
  bool errored = false;  ///< any span ended with a non-kOk status
  std::vector<SpanRecord> spans;  ///< finish order (roots last)
};

namespace detail {

/// Shared per-request span sink. Spans of one trace may finish on several
/// threads (VerifyQueue workers), so appends take the buffer mutex — scoped
/// to one request, it is uncontended in the common case.
struct TraceBuffer {
  TraceId id;
  std::atomic<std::uint64_t> next_span{2};  ///< 1 is the root span
  std::atomic<bool> errored{false};
  std::atomic<bool> finished{false};  ///< root ended; stragglers are dropped
  sp::Mutex mutex;
  std::vector<SpanRecord> spans SP_GUARDED_BY(mutex);
};

}  // namespace detail

/// Cheap, copyable handle identifying "the span children attach to" within a
/// sampled request — or nothing at all (default-constructed / unsampled),
/// in which case every operation derived from it no-ops.
class TraceContext {
 public:
  TraceContext() = default;

  [[nodiscard]] bool sampled() const { return buf_ != nullptr; }
  [[nodiscard]] TraceId trace_id() const { return buf_ ? buf_->id : TraceId{}; }
  [[nodiscard]] std::uint64_t span_id() const { return span_; }

 private:
  friend class Span;
  friend class Tracer;
  friend class ContextGuard;
  friend std::uint64_t reserve_span_id(const TraceContext&);

  TraceContext(std::shared_ptr<detail::TraceBuffer> buf, std::uint64_t span)
      : buf_(std::move(buf)), span_(span) {}

  std::shared_ptr<detail::TraceBuffer> buf_;
  std::uint64_t span_ = 0;
};

/// Pre-allocates a span id under `ctx` (0 when unsampled) so a later worker
/// can materialize the span while earlier spans already link to it — the
/// VerifyQueue batch-link mechanism.
[[nodiscard]] std::uint64_t reserve_span_id(const TraceContext& ctx);

/// RAII span. Move-only; ends (and records itself) on destruction or
/// explicit end(). All mutators no-op when the span is not recording.
class Span {
 public:
  Span() = default;
  /// Child span under `parent`, started now.
  Span(const TraceContext& parent, std::string_view name);
  /// Child span with an explicit start timestamp (queue-wait spans measured
  /// from enqueue time) and optionally a pre-reserved id (0 = allocate).
  Span(const TraceContext& parent, std::string_view name, std::uint64_t start_ns,
       std::uint64_t reserved_id = 0);

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  [[nodiscard]] bool recording() const { return buf_ != nullptr; }
  /// Context for children of THIS span.
  [[nodiscard]] TraceContext context() const;
  [[nodiscard]] std::uint64_t span_id() const { return rec_.span_id; }

  void set_status(SpanStatus status);
  void add_attr(std::string_view key, std::string_view value);
  void add_attr(std::string_view key, std::int64_t value);
  void add_attr(std::string_view key, double value);
  void add_link(TraceId trace, std::uint64_t span);
  void add_link(const SpanLink& link) { add_link(link.trace, link.span); }

  /// Ends the span (idempotent): stamps end_ns and appends the record to
  /// the trace buffer. Ending a root span finishes the whole trace and
  /// publishes it to the collector.
  void end();

 private:
  friend class Tracer;

  std::shared_ptr<detail::TraceBuffer> buf_;
  SpanRecord rec_;
};

/// Installs `ctx` as the calling thread's current context for the guard's
/// scope (restores the previous one on destruction). This is the async
/// propagation glue: ThreadPool workers install the submitter's context,
/// VerifyQueue jobs the origin request's, so layers that never see a
/// TraceContext parameter (SP/DH ops, the WAL wait path) still attach to
/// the right trace via Tracer::current().
class ContextGuard {
 public:
  explicit ContextGuard(TraceContext ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
};

/// Collector + sampling configuration. Ring sizes are per producer thread
/// and rounded up to powers of two.
struct TracerConfig {
  /// Head sampling probability for start_trace (0..1).
  double sample_probability = 1.0;
  /// Recent ring: every finished sampled trace lands here (newest wins).
  std::size_t ring_slots = 256;
  /// Kept ring: errored and slow traces, retained preferentially.
  std::size_t kept_slots = 64;
  /// A trace is "slow" when its root duration reaches this percentile of
  /// the sp_trace_root_ms histogram...
  double keep_slow_percentile = 0.99;
  /// ...once at least this many roots have been observed (before that the
  /// estimate is noise and only errored traces hit the kept ring).
  std::uint64_t keep_slow_min_count = 64;
};

/// Process-wide tracer: head-sampling root-span factory, thread-local
/// current-context slot, and the lock-free per-thread ring collector.
/// Disabled by default — enabling is an explicit operator/bench decision.
class Tracer {
 public:
  /// Intentionally leaked, like MetricsRegistry::global(): spans may finish
  /// on shutdown paths.
  static Tracer& global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Applies sampling/ring settings. Ring sizing affects rings created
  /// after the call; call before producing traffic (tests, bench arms).
  void configure(const TracerConfig& config);
  [[nodiscard]] TracerConfig config() const;

  /// Starts a new trace: makes the head-sampling decision and returns its
  /// root span (non-recording when disabled or not sampled).
  [[nodiscard]] Span start_trace(std::string_view name);
  /// Starts a new trace bypassing the sampling draw (WAL group-commit spans
  /// triggered by an already-sampled origin). Still a no-op when disabled.
  [[nodiscard]] Span start_trace_forced(std::string_view name);

  /// The calling thread's current context (invalid when none installed).
  [[nodiscard]] static TraceContext current();

  /// Steady-clock nanoseconds on the tracer's timeline.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Removes and returns every collected trace from every thread's rings
  /// (kept first). Safe to run concurrently with producers: each slot is
  /// claimed with one atomic exchange.
  [[nodiscard]] std::vector<TraceData> drain();

 private:
  friend class Span;

  struct Ring;
  struct ThreadRings;

  /// Called by the root Span's end(): seals the buffer, applies the
  /// tail-based keep rules and publishes to the calling thread's rings.
  void finish(const std::shared_ptr<detail::TraceBuffer>& buf);
  ThreadRings& rings_for_this_thread();

  std::atomic<bool> enabled_{false};
  /// Head-sampling threshold over the uniform low word of the trace id;
  /// UINT64_MAX means "always".
  std::atomic<std::uint64_t> sample_threshold_{~0ull};
  std::atomic<double> keep_slow_percentile_{0.99};
  std::atomic<std::uint64_t> keep_slow_min_count_{64};
  std::atomic<std::size_t> ring_slots_{256};
  std::atomic<std::size_t> kept_slots_{64};

  mutable sp::Mutex rings_mutex_;  ///< guards the ring registry, not the slots
  std::vector<std::unique_ptr<ThreadRings>> rings_ SP_GUARDED_BY(rings_mutex_);
};

}  // namespace sp::obs
