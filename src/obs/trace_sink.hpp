// Trace export and analysis over drained TraceData (src/obs/trace.hpp).
//
// Two export formats plus the aggregation the sp_trace CLI prints:
//
//  * Chrome trace-event JSON (chrome://tracing, Perfetto's legacy loader):
//    every span is a complete ("ph":"X") event on its thread's track;
//    span links become flow events ("s"/"f") so a WAL group-commit batch
//    visibly connects to the requests it committed.
//  * Folded stacks (root;child;leaf weight) — the flamegraph.pl /
//    speedscope input format; weights are self-time microseconds.
//  * Phase breakdown: per span-name totals, self-time (duration minus the
//    union of child intervals — the critical-path attribution) and p50,
//    aggregated across traces.
//
// The binary dump format lives in src/codec/trace_records.hpp — the codec
// library can depend on obs, not the other way around.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sp::obs {

/// Chrome about:tracing JSON for a set of traces ({"traceEvents": [...]}).
/// Timestamps are steady-clock microseconds (self-consistent, not wall).
[[nodiscard]] std::string to_chrome_json(std::span<const TraceData> traces);

/// Folded-stack lines ("sp.request;sp.attempt;sp.verify 1234\n"), weights =
/// aggregated self-time in microseconds. Feed to flamegraph.pl / speedscope.
[[nodiscard]] std::string to_folded_stacks(std::span<const TraceData> traces);

/// Aggregated per-phase (per span-name) statistics across traces.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0;  ///< sum of span durations
  double self_ms = 0;   ///< sum of durations minus child-interval coverage
  double p50_ms = 0;    ///< median span duration
  double max_ms = 0;
};

/// Breakdown sorted by self-time, descending — the critical-path view:
/// self-time is where the wall clock actually went, double counting none of
/// the parent/child overlap.
[[nodiscard]] std::vector<PhaseStat> phase_breakdown(std::span<const TraceData> traces);

/// Indices of the N slowest traces (by root duration), slowest first.
[[nodiscard]] std::vector<std::size_t> slowest_traces(std::span<const TraceData> traces,
                                                      std::size_t n);

/// Human-readable span tree of one trace: indentation = depth, with
/// durations, status and attributes per span.
[[nodiscard]] std::string format_trace_tree(const TraceData& trace);

}  // namespace sp::obs
