// Process identity as metrics: the sp_build_info gauge (value fixed at 1,
// identity in the labels — the Prometheus convention for joining any other
// series to a build) plus an uptime gauge refreshed at scrape time.
//
// Values are baked in at compile time via SP_BUILD_* definitions set by
// src/obs/CMakeLists.txt (version, git sha, compiler, sanitizer flags) and
// sanitized here to the registry's label-value charset, so a weird branch
// name or compiler string can never make registration throw.
#pragma once

#include <string>

namespace sp::obs {

class MetricsRegistry;

struct BuildInfo {
  std::string version;    ///< project version (CMake PROJECT_VERSION)
  std::string git_sha;    ///< short commit hash, "unknown" outside a checkout
  std::string compiler;   ///< e.g. "GNU-13.2.0"
  std::string sanitizer;  ///< SP_SANITIZE cache value, "none" when off
};

/// The compile-time identity of this binary (post label-sanitization).
[[nodiscard]] const BuildInfo& build_info();

/// Registers sp_build_info{version,git_sha,compiler,sanitizer} = 1 and
/// sp_uptime_seconds in `registry`, plus a scrape hook that refreshes the
/// uptime and re-asserts the info gauge (so a bench-harness reset() cannot
/// leave the identity series reading 0). MetricsRegistry::global() calls
/// this once; private test registries may call it themselves.
void register_build_metrics(MetricsRegistry& registry);

}  // namespace sp::obs
