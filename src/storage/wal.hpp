// Append-only write-ahead log with group commit (ROADMAP item 1).
//
// One background writer thread owns the file descriptor; callers enqueue
// framed records and wait for durability. The writer drains *everything*
// queued in one pass, writes it with a single write(2), then issues one
// fdatasync covering the whole batch — so under concurrent load N appends
// pay one fsync, and a single-threaded caller degrades to classic
// write+sync. This is the batched single-writer queue of the exemplar
// (badem's write_database_queue), rebuilt on the repo's sp::Mutex/CondVar
// capability wrappers.
//
// Durability contract: when append() (or Ticket::wait via enqueue/wait)
// returns, the record is in the file per the fsync policy — kBatch means
// fdatasync completed, kNever means write(2) completed (survives process
// death, not power loss; the SIGKILL chaos tests run in this mode).
// append_async() is fire-and-forget for the SP's passive observation log:
// ordered with every other append, but nobody blocks on it.
//
// Crash kill points (chaos layer): with a FaultInjector configured, the
// writer draws one PRF decision per record (FaultStream::next_crash). On a
// hit it writes a deliberately torn prefix of that record and dies —
// default std::_Exit(kCrashExitCode); tests override on_crash to raise
// SIGKILL. Recovery replay (replay() + the torn-tail truncation) is what
// makes this survivable, and the crash tests gate exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "codec/wire.hpp"
#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sp::storage {

using crypto::Bytes;

class WalWriter {
 public:
  enum class Fsync : std::uint8_t {
    kNever,  ///< write(2) only — survives SIGKILL, not power loss
    kBatch,  ///< one fdatasync per drained batch (group commit)
  };

  struct Options {
    Fsync fsync = Fsync::kBatch;
    /// Crash schedule; null = never crashes. The stream is keyed by
    /// `crash_label` via stream_for_label, so two writers with distinct
    /// labels crash independently under one plan.
    const net::FaultInjector* crash_injector = nullptr;
    std::string crash_label = "wal";
    /// Invoked at a kill point after the torn write. Must not return.
    /// Default: std::_Exit(kCrashExitCode).
    std::function<void()> on_crash;
  };

  static constexpr int kCrashExitCode = 137;

  /// Opens (creating if needed) `path` for appending. Throws
  /// std::runtime_error on I/O failure.
  WalWriter(std::string path, Options opts);
  /// Drains the queue, then joins the writer thread.
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opaque position in the append order; wait(ticket) blocks until every
  /// record at or before it is durable.
  using Ticket = std::uint64_t;

  /// Enqueues one framed record and returns immediately. Queue position —
  /// and therefore replay order — is fixed at enqueue time, which is what
  /// lets hosts enqueue under a shard lock (cheap) and wait outside it.
  Ticket enqueue(Bytes framed);
  /// Blocks until the record behind `ticket` is durable.
  void wait(Ticket ticket);
  /// enqueue + wait.
  void append(Bytes framed);
  /// Fire-and-forget enqueue (observation log).
  void append_async(Bytes framed);
  /// Barrier: every record enqueued before the call is durable on return.
  void flush();

  /// Rotate to a new file: all queued records drain to the old file first,
  /// the old fd is fsynced (kBatch) and closed, then appends continue in
  /// `new_path`. Blocks until the switch happened.
  void rotate_to(std::string new_path);

  [[nodiscard]] const std::string& path() const;
  /// Bytes appended to the *current* file so far (checkpoint trigger).
  [[nodiscard]] std::uint64_t current_file_bytes() const;

 private:
  struct Pending {
    Bytes data;
    std::uint64_t seq = 0;
    bool rotate = false;
    std::string rotate_path;
    // Origin trace of the enqueuing request (zero = untraced). The writer's
    // group-commit span links back to these, making "which requests did this
    // fsync cover" a first-class question in a trace dump.
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t origin_span = 0;
  };

  void worker_loop();
  void write_batch(std::vector<Pending>& batch) SP_EXCLUDES(mutex_);
  void write_all_or_die(const std::uint8_t* data, std::size_t size);

  Options opts_;
  int fd_ = -1;          ///< owned by the worker thread after construction
  std::string path_;     ///< guarded by mutex_ (rotate swaps it)

  mutable sp::Mutex mutex_;
  sp::CondVar work_cv_;     ///< writer wakes on new work / shutdown
  sp::CondVar durable_cv_;  ///< waiters wake when durable_seq_ advances
  std::vector<Pending> queue_ SP_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ SP_GUARDED_BY(mutex_) = 0;
  std::uint64_t durable_seq_ SP_GUARDED_BY(mutex_) = 0;
  std::uint64_t file_bytes_ SP_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SP_GUARDED_BY(mutex_) = false;
  std::string error_ SP_GUARDED_BY(mutex_);  ///< first writer I/O failure; waiters rethrow
  std::optional<net::FaultStream> crash_tape_;  ///< worker-thread only
  std::thread thread_;
};

/// Replays every valid frame of a WAL file in order. A torn or corrupt tail
/// stops the replay cleanly; when `truncate_torn_tail` is set the file is
/// truncated back to the last valid frame so a reopened writer appends
/// after clean data. Returns the stats the recovery metrics report.
struct WalReplayStats {
  std::uint64_t records = 0;
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
};
WalReplayStats replay_wal(const std::string& path,
                          const std::function<void(const codec::Frame&)>& apply,
                          bool truncate_torn_tail = true);

}  // namespace sp::storage
