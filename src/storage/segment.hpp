// Immutable, memory-mapped segment files — the checkpointed half of the
// durable store (ROADMAP item 1). A segment is the snapshot a checkpoint
// takes of a host's ShardedStore maps: a run of Envelope frames (one per
// live record) followed by a kSegment footer frame carrying the entry count
// and the maximum envelope sequence number. Frames are the same
// magic/version/CRC32C frames the WAL uses (codec/wire.hpp), so a segment
// detects the same corruption the log does — a bad byte anywhere fails the
// frame CRC at open and the segment is rejected whole.
//
// Readers mmap the file read-only and build an in-memory index (keyspace,
// id) -> frame offset in one forward scan at open; get() decodes the
// envelope on demand from the mapping, so resident cost is the index, not
// the values. SegmentWriter streams entries to a temp path; the caller
// (DurableStore::checkpoint) fsyncs and atomically renames.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "codec/records.hpp"
#include "crypto/bytes.hpp"

namespace sp::storage {

using crypto::Bytes;

/// Streams envelope frames into a segment file. Not thread-safe; one
/// checkpoint owns one writer. finish() writes the footer and fsyncs.
class SegmentWriter {
 public:
  /// Creates (truncating) `path`. Throws std::runtime_error on I/O failure.
  explicit SegmentWriter(std::string path);
  ~SegmentWriter();
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  void add(const codec::Envelope& env);
  /// Footer + fdatasync + close. Returns total file bytes. Must be called
  /// exactly once; the destructor aborts an unfinished file by unlinking it.
  std::uint64_t finish();

 private:
  void write_all(const std::uint8_t* data, std::size_t size);

  std::string path_;
  int fd_ = -1;
  std::uint64_t entries_ = 0;
  std::uint64_t max_seq_ = 0;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// Read-only view of one segment file. Immutable after open.
class Segment {
 public:
  /// mmaps and validates `path`: every frame must parse (CRC included), the
  /// footer count must match the entries seen. Throws codec::CodecError on
  /// corruption, std::runtime_error on I/O failure.
  explicit Segment(const std::string& path);
  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Decoded value for (space, id), or nullopt when absent.
  [[nodiscard]] std::optional<codec::Envelope> get(std::uint8_t space, std::string_view id) const;
  /// Visits every entry in file order (recovery replay).
  void for_each(const std::function<void(const codec::Envelope&)>& fn) const;

  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] std::uint64_t max_seq() const { return max_seq_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return size_; }

 private:
  [[nodiscard]] static std::string index_id(std::uint8_t space, std::string_view id);

  const std::uint8_t* map_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t max_seq_ = 0;
  /// (space byte + id) -> byte offset of the envelope frame.
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace sp::storage
