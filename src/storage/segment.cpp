#include "storage/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <stdexcept>

#include "codec/wire.hpp"

namespace sp::storage {

namespace {

Bytes encode_footer(std::uint64_t entries, std::uint64_t max_seq) {
  codec::Writer w;
  w.u64(entries);
  w.u64(max_seq);
  return codec::frame(static_cast<std::uint8_t>(codec::RecordType::kSegment), w.view());
}

}  // namespace

// ---------------------------------------------------------------- writer

SegmentWriter::SegmentWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("SegmentWriter: open(" + path_ + "): " + std::strerror(errno));
  }
}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    // An unfinished segment has no valid footer; unlink it so recovery never
    // even sees the partial file.
    if (!finished_) ::unlink(path_.c_str());
  }
}

void SegmentWriter::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("SegmentWriter: write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  bytes_ += size;
}

void SegmentWriter::add(const codec::Envelope& env) {
  const Bytes framed = codec::encode_envelope(env);
  write_all(framed.data(), framed.size());
  ++entries_;
  if (env.seq > max_seq_) max_seq_ = env.seq;
}

std::uint64_t SegmentWriter::finish() {
  const Bytes footer = encode_footer(entries_, max_seq_);
  write_all(footer.data(), footer.size());
  if (::fdatasync(fd_) != 0) {
    throw std::runtime_error(std::string("SegmentWriter: fdatasync: ") + std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  return bytes_;
}

// ---------------------------------------------------------------- reader

std::string Segment::index_id(std::uint8_t space, std::string_view id) {
  std::string k;
  k.reserve(id.size() + 1);
  k.push_back(static_cast<char>(space));
  k.append(id);
  return k;
}

Segment::Segment(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("Segment: open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("Segment: fstat(" + path + "): " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw codec::CodecError("Segment: empty file: " + path);
  }
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED) {
    throw std::runtime_error("Segment: mmap(" + path + "): " + std::strerror(errno));
  }
  map_ = static_cast<const std::uint8_t*>(m);

  try {
    const std::span<const std::uint8_t> data(map_, size_);
    std::size_t off = 0;
    bool saw_footer = false;
    while (off < size_) {
      const std::size_t frame_off = off;
      const auto f = codec::try_unframe_prefix(data, off);
      if (!f) throw codec::CodecError("Segment: corrupt frame in " + path);
      if (f->type == static_cast<std::uint8_t>(codec::RecordType::kSegment)) {
        codec::Reader r(f->payload);
        const std::uint64_t count = r.u64();
        const std::uint64_t max_seq = r.u64();
        r.expect_done("segment footer");
        if (off != size_) throw codec::CodecError("Segment: data after footer in " + path);
        if (count != entries_) throw codec::CodecError("Segment: footer count mismatch in " + path);
        max_seq_ = max_seq;
        saw_footer = true;
        break;
      }
      const codec::Envelope env = codec::decode_envelope_payload(*f);
      index_[index_id(env.space, env.id)] = frame_off;
      ++entries_;
    }
    if (!saw_footer) throw codec::CodecError("Segment: missing footer in " + path);
  } catch (...) {
    ::munmap(const_cast<std::uint8_t*>(map_), size_);
    map_ = nullptr;
    throw;
  }
}

Segment::~Segment() {
  if (map_ != nullptr) ::munmap(const_cast<std::uint8_t*>(map_), size_);
}

std::optional<codec::Envelope> Segment::get(std::uint8_t space, std::string_view id) const {
  const auto it = index_.find(index_id(space, id));
  if (it == index_.end()) return std::nullopt;
  std::size_t off = it->second;
  const auto f = codec::try_unframe_prefix(std::span(map_, size_), off);
  if (!f) throw codec::CodecError("Segment: indexed frame no longer parses");
  return codec::decode_envelope_payload(*f);
}

void Segment::for_each(const std::function<void(const codec::Envelope&)>& fn) const {
  const std::span<const std::uint8_t> data(map_, size_);
  std::size_t off = 0;
  while (off < size_) {
    const auto f = codec::try_unframe_prefix(data, off);
    if (!f) throw codec::CodecError("Segment: corrupt frame during scan");
    if (f->type == static_cast<std::uint8_t>(codec::RecordType::kSegment)) break;
    fn(codec::decode_envelope_payload(*f));
  }
}

}  // namespace sp::storage
