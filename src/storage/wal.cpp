#include "storage/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sp::storage {

namespace {

/// WAL instruments (docs/OBSERVABILITY.md catalog); process-wide totals
/// across every writer.
struct WalMetrics {
  obs::Counter& appends;
  obs::Counter& batches;
  obs::Counter& wal_bytes;
  obs::Histogram& fsync_ms;

  static WalMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static WalMetrics m{
        reg.counter("sp_storage_wal_appends_total", "Records appended to write-ahead logs"),
        reg.counter("sp_storage_wal_batches_total", "Group-commit batches written"),
        reg.counter("sp_storage_wal_bytes_total", "Bytes appended to write-ahead logs"),
        reg.histogram("sp_storage_fsync_ms", "fdatasync latency per group-commit batch"),
    };
    return m;
  }
};

int open_append(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw std::runtime_error("WalWriter: open(" + path + "): " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

WalWriter::WalWriter(std::string path, Options opts) : opts_(std::move(opts)), path_(std::move(path)) {
  fd_ = open_append(path_);
  struct stat st{};
  if (::fstat(fd_, &st) == 0) file_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (opts_.crash_injector != nullptr) {
    crash_tape_ = opts_.crash_injector->stream_for_label(opts_.crash_label);
  }
  if (!opts_.on_crash) {
    opts_.on_crash = [] { std::_Exit(kCrashExitCode); };
  }
  thread_ = std::thread([this] { worker_loop(); });
}

WalWriter::~WalWriter() {
  {
    const sp::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    if (opts_.fsync == Fsync::kBatch) ::fdatasync(fd_);
    ::close(fd_);
  }
}

WalWriter::Ticket WalWriter::enqueue(Bytes framed) {
  Ticket ticket = 0;
  Pending p;
  p.data = std::move(framed);
  // Tag the record with the enqueuing request's trace (and mark the enqueue
  // moment as a zero-ish span in that trace) so the group-commit batch can
  // link back to it.
  const obs::TraceContext ctx = obs::Tracer::current();
  if (ctx.sampled()) {
    const obs::TraceId id = ctx.trace_id();
    p.trace_hi = id.hi;
    p.trace_lo = id.lo;
    obs::Span enqueue_span(ctx, "wal.enqueue");
    p.origin_span = enqueue_span.span_id();
    enqueue_span.end();
  }
  {
    const sp::MutexLock lock(mutex_);
    p.seq = ++next_seq_;
    ticket = p.seq;
    queue_.push_back(std::move(p));
  }
  work_cv_.notify_one();
  return ticket;
}

void WalWriter::wait(Ticket ticket) {
  sp::MutexLock lock(mutex_);
  while (durable_seq_ < ticket && error_.empty()) durable_cv_.wait(lock);
  if (!error_.empty()) throw std::runtime_error("WalWriter: " + error_);
}

void WalWriter::append(Bytes framed) { wait(enqueue(std::move(framed))); }

void WalWriter::append_async(Bytes framed) { (void)enqueue(std::move(framed)); }

void WalWriter::flush() {
  std::uint64_t last = 0;
  {
    const sp::MutexLock lock(mutex_);
    last = next_seq_;
  }
  wait(last);
}

void WalWriter::rotate_to(std::string new_path) {
  Ticket ticket = 0;
  {
    const sp::MutexLock lock(mutex_);
    Pending p;
    p.seq = ++next_seq_;
    p.rotate = true;
    p.rotate_path = std::move(new_path);
    ticket = p.seq;
    queue_.push_back(std::move(p));
  }
  work_cv_.notify_one();
  wait(ticket);
}

const std::string& WalWriter::path() const {
  const sp::MutexLock lock(mutex_);
  return path_;
}

std::uint64_t WalWriter::current_file_bytes() const {
  const sp::MutexLock lock(mutex_);
  return file_bytes_;
}

void WalWriter::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      sp::MutexLock lock(mutex_);
      while (queue_.empty() && !shutdown_) work_cv_.wait(lock);
      if (queue_.empty()) return;  // shutdown with a drained queue
      batch.swap(queue_);
    }
    write_batch(batch);
  }
}

void WalWriter::write_all_or_die(const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void WalWriter::write_batch(std::vector<Pending>& batch) {
  WalMetrics& metrics = WalMetrics::get();
  // The writer thread has no request context — a group commit serves many.
  // When any record in the batch came from a sampled request, open a forced
  // (sampling-exempt) trace whose root links to every sampled origin: the
  // exported dump then shows request → wal.enqueue → wal.group_commit.
  obs::Span batch_span;
  {
    std::vector<obs::SpanLink> origins;
    for (const Pending& p : batch) {
      if ((p.trace_hi | p.trace_lo) != 0) {
        origins.push_back(obs::SpanLink{obs::TraceId{p.trace_hi, p.trace_lo}, p.origin_span});
      }
    }
    if (!origins.empty()) {
      batch_span = obs::Tracer::global().start_trace_forced("wal.group_commit");
      if (batch_span.recording()) {
        batch_span.add_attr("records", static_cast<std::int64_t>(batch.size()));
        for (const obs::SpanLink& link : origins) batch_span.add_link(link);
      }
    }
  }
  const obs::TraceContext batch_ctx = batch_span.context();
  try {
    Bytes buffer;
    std::uint64_t last_seq = 0;
    std::uint64_t records = 0;
    const auto commit_buffer = [&] {
      if (!buffer.empty()) {
        obs::Span write_span(batch_ctx, "wal.write");
        if (write_span.recording()) {
          write_span.add_attr("bytes", static_cast<std::int64_t>(buffer.size()));
        }
        write_all_or_die(buffer.data(), buffer.size());
        metrics.wal_bytes.inc(buffer.size());
      }
      if (opts_.fsync == Fsync::kBatch) {
        obs::Span fsync_span(batch_ctx, "wal.fsync");
        const auto t0 = std::chrono::steady_clock::now();
        if (::fdatasync(fd_) != 0) {
          throw std::runtime_error(std::string("fdatasync: ") + std::strerror(errno));
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        metrics.fsync_ms.observe(std::chrono::duration<double, std::milli>(dt).count());
      }
      metrics.batches.inc();
      metrics.appends.inc(records);
      const std::uint64_t bytes = buffer.size();
      buffer.clear();
      records = 0;
      if (last_seq > 0) {
        const sp::MutexLock lock(mutex_);
        durable_seq_ = last_seq;
        file_bytes_ += bytes;
      }
      durable_cv_.notify_all();
    };

    for (Pending& p : batch) {
      if (p.rotate) {
        // Everything queued before the rotation lands — durably — in the
        // old file, so the old epoch's WAL is complete before the new one
        // starts accepting records.
        commit_buffer();
        if (opts_.fsync == Fsync::kBatch) ::fdatasync(fd_);
        ::close(fd_);
        fd_ = open_append(p.rotate_path);
        {
          const sp::MutexLock lock(mutex_);
          path_ = p.rotate_path;
          file_bytes_ = 0;
          durable_seq_ = p.seq;
        }
        last_seq = p.seq;
        durable_cv_.notify_all();
        continue;
      }
      if (crash_tape_ && crash_tape_->next_crash()) {
        // Kill point: flush the intact prefix of the batch, then die midway
        // through this record — the torn tail recovery must truncate.
        if (!buffer.empty()) write_all_or_die(buffer.data(), buffer.size());
        write_all_or_die(p.data.data(), p.data.size() / 2);
        opts_.on_crash();
        std::_Exit(kCrashExitCode);  // on_crash must not return
      }
      buffer.insert(buffer.end(), p.data.begin(), p.data.end());
      last_seq = p.seq;
      ++records;
    }
    commit_buffer();
  } catch (const std::exception& e) {
    batch_span.set_status(obs::SpanStatus::kTerminal);
    const sp::MutexLock lock(mutex_);
    if (error_.empty()) error_ = e.what();
    durable_cv_.notify_all();
  }
}

WalReplayStats replay_wal(const std::string& path,
                          const std::function<void(const codec::Frame&)>& apply,
                          bool truncate_torn_tail) {
  WalReplayStats stats;
  Bytes contents;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return stats;  // no file yet: empty log
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  std::size_t off = 0;
  while (off < contents.size()) {
    const auto f = codec::try_unframe_prefix(contents, off);
    if (!f) {
      stats.torn_tail = true;
      break;
    }
    apply(*f);
    ++stats.records;
  }
  stats.valid_bytes = off;
  if (stats.torn_tail && truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(off)) != 0) {
      throw std::runtime_error("replay_wal: truncate(" + path + "): " + std::strerror(errno));
    }
  }
  return stats;
}

}  // namespace sp::storage
