// DurableStore: the epoch-numbered WAL + segment pair behind a persistent
// host (ROADMAP item 1). One directory holds at most one live segment and
// the write-ahead logs that follow it:
//
//   seg-<E>.spseg   snapshot of the host's maps as of the start of epoch E
//   wal-<E>.log     every mutation appended during epoch E
//
// Lifecycle:
//
//  * recover(apply) — find the newest segment that passes validation, replay
//    its entries through `apply`, then replay every WAL file with epoch >=
//    the segment's in ascending epoch order (torn tails truncated). Opens
//    the group-commit writer on the newest WAL when done. Stale files from
//    epochs before the segment are deleted (a crash between checkpoint steps
//    leaves them behind; they are fully superseded).
//  * enqueue/wait/append/append_async — encode-free passthroughs to the
//    WalWriter; callers hand in codec::Envelope mutations. The durability
//    contract is the writer's (group commit, one fsync per batch).
//  * checkpoint(scan) — rotate the WAL to epoch E+1, stream the live state
//    the caller's `scan` emits into seg-<E+1>.tmp, fsync, atomically rename
//    to seg-<E+1>.spseg, fsync the directory, then delete the epoch-E files.
//    Correctness leans on the hosts' map-first write ordering: a record is
//    applied to the in-memory maps *before* its envelope is enqueued (both
//    under the shard lock), so by the time rotate_to() returns every record
//    in the old WAL is visible to the snapshot scan. Records appended after
//    the rotation may appear in both the snapshot and the new WAL — replay
//    is idempotent (puts overwrite, erases tolerate missing ids), and
//    segment-then-WAL order means the newer write wins.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "codec/records.hpp"
#include "storage/wal.hpp"

namespace sp::storage {

class DurableStore {
 public:
  struct Options {
    std::string dir;
    WalWriter::Options wal;
    /// maybe_checkpoint() fires when the live WAL exceeds this many bytes.
    std::uint64_t checkpoint_wal_bytes = 64ull << 20;
  };

  struct RecoveryStats {
    std::uint64_t segment_records = 0;
    std::uint64_t wal_records = 0;
    std::uint64_t wal_files = 0;
    bool torn_tail = false;
    std::uint64_t max_seq = 0;   ///< largest envelope seq replayed
    double elapsed_ms = 0.0;
  };

  /// Creates `opts.dir` if needed and scans it for epoch files. The store is
  /// not writable until recover() runs — construction never touches file
  /// contents, so a corrupt directory fails in recover() where the caller
  /// handles it.
  explicit DurableStore(Options opts);
  ~DurableStore();
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  using Applier = std::function<void(const codec::Envelope&)>;
  /// Replays segment + WALs through `apply` and opens the writer. Call
  /// exactly once, before any append. Observes sp_storage_recovery_ms.
  RecoveryStats recover(const Applier& apply);

  using Ticket = WalWriter::Ticket;
  [[nodiscard]] Ticket enqueue(const codec::Envelope& env);
  void wait(Ticket ticket);
  void append(const codec::Envelope& env);
  void append_async(const codec::Envelope& env);
  void flush();

  /// Pre-encoded variants: hosts encode outside their shard locks and hand
  /// the finished frame over while holding them (see osn/persist.hpp).
  [[nodiscard]] Ticket enqueue_framed(Bytes framed) { return writer_->enqueue(std::move(framed)); }
  void append_framed_async(Bytes framed) { writer_->append_async(std::move(framed)); }

  /// `scan` must invoke the emit callback once per live record; see the
  /// ordering note in the file header. Serialized internally — concurrent
  /// checkpoints queue behind one mutex; appends continue throughout.
  using Scanner = std::function<void(const Applier& emit)>;
  void checkpoint(const Scanner& scan);
  /// checkpoint(scan) iff the live WAL crossed checkpoint_wal_bytes.
  bool maybe_checkpoint(const Scanner& scan);

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t wal_bytes() const { return writer_->current_file_bytes(); }
  [[nodiscard]] const std::string& dir() const { return opts_.dir; }

  [[nodiscard]] static std::string segment_path(const std::string& dir, std::uint64_t epoch);
  [[nodiscard]] static std::string wal_path(const std::string& dir, std::uint64_t epoch);

 private:
  Options opts_;
  std::unique_ptr<WalWriter> writer_;  ///< null until recover()

  mutable sp::Mutex admin_mutex_;  ///< serializes checkpoint vs. epoch reads
  std::uint64_t epoch_ SP_GUARDED_BY(admin_mutex_) = 0;
};

}  // namespace sp::storage
