#include "storage/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/segment.hpp"

namespace sp::storage {

namespace fs = std::filesystem;

namespace {

/// Store-level instruments (docs/OBSERVABILITY.md catalog).
struct StoreMetrics {
  obs::Histogram& recovery_ms;
  obs::Counter& recovered_records;
  obs::Counter& torn_tails;
  obs::Counter& checkpoints;
  obs::Gauge& segment_bytes;

  static StoreMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StoreMetrics m{
        reg.histogram("sp_storage_recovery_ms", "Cold-start recovery replay time",
                      obs::Histogram::exponential_bounds(1.0, 2.5, 16)),
        reg.counter("sp_storage_recovered_records_total", "Records replayed during recovery"),
        reg.counter("sp_storage_torn_tails_total", "WAL torn tails truncated during recovery"),
        reg.counter("sp_storage_checkpoints_total", "Segment checkpoints completed"),
        reg.gauge("sp_storage_segment_bytes", "Bytes in live segment files"),
    };
    return m;
  }
};

/// Parses "<prefix><digits><suffix>" into the epoch; nullopt on mismatch.
std::optional<std::uint64_t> parse_epoch(const std::string& name, std::string_view prefix,
                                         std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return std::nullopt;
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t epoch = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw std::runtime_error("DurableStore: open dir " + dir + ": " + std::strerror(errno));
  }
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string DurableStore::segment_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/seg-" + std::to_string(epoch) + ".spseg";
}

std::string DurableStore::wal_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/wal-" + std::to_string(epoch) + ".log";
}

DurableStore::DurableStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) throw std::invalid_argument("DurableStore: dir required");
  fs::create_directories(opts_.dir);
}

DurableStore::~DurableStore() = default;

DurableStore::RecoveryStats DurableStore::recover(const Applier& apply) {
  if (writer_) throw std::logic_error("DurableStore::recover: already recovered");
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryStats stats;

  std::vector<std::uint64_t> seg_epochs;
  std::vector<std::uint64_t> wal_epochs;
  for (const auto& entry : fs::directory_iterator(opts_.dir)) {
    const std::string name = entry.path().filename().string();
    if (const auto e = parse_epoch(name, "seg-", ".spseg")) seg_epochs.push_back(*e);
    if (const auto e = parse_epoch(name, "wal-", ".log")) wal_epochs.push_back(*e);
  }
  std::sort(seg_epochs.rbegin(), seg_epochs.rend());  // newest first
  std::sort(wal_epochs.begin(), wal_epochs.end());

  // Newest segment that validates wins; a corrupt or half-written newer one
  // is deleted so it can never shadow the good snapshot again.
  std::uint64_t base_epoch = 0;
  bool have_segment = false;
  for (const std::uint64_t e : seg_epochs) {
    try {
      const Segment seg(segment_path(opts_.dir, e));
      seg.for_each([&](const codec::Envelope& env) {
        apply(env);
        ++stats.segment_records;
        if (env.seq > stats.max_seq) stats.max_seq = env.seq;
      });
      base_epoch = e;
      have_segment = true;
      StoreMetrics::get().segment_bytes.set(static_cast<std::int64_t>(seg.file_bytes()));
      break;
    } catch (const codec::CodecError&) {
      fs::remove(segment_path(opts_.dir, e));
    }
  }

  std::uint64_t newest_epoch = have_segment ? base_epoch : 0;
  for (const std::uint64_t e : wal_epochs) {
    if (have_segment && e < base_epoch) {
      fs::remove(wal_path(opts_.dir, e));  // fully superseded by the segment
      continue;
    }
    const WalReplayStats r = replay_wal(wal_path(opts_.dir, e), [&](const codec::Frame& f) {
      const codec::Envelope env = codec::decode_envelope_payload(f);
      apply(env);
      if (env.seq > stats.max_seq) stats.max_seq = env.seq;
    });
    stats.wal_records += r.records;
    ++stats.wal_files;
    if (r.torn_tail) {
      stats.torn_tail = true;
      StoreMetrics::get().torn_tails.inc();
    }
    newest_epoch = std::max(newest_epoch, e);
  }

  {
    const sp::MutexLock lock(admin_mutex_);
    epoch_ = newest_epoch;
  }
  writer_ = std::make_unique<WalWriter>(wal_path(opts_.dir, newest_epoch), opts_.wal);

  const auto dt = std::chrono::steady_clock::now() - t0;
  stats.elapsed_ms = std::chrono::duration<double, std::milli>(dt).count();
  StoreMetrics& m = StoreMetrics::get();
  m.recovery_ms.observe(stats.elapsed_ms);
  m.recovered_records.inc(stats.segment_records + stats.wal_records);
  return stats;
}

DurableStore::Ticket DurableStore::enqueue(const codec::Envelope& env) {
  return writer_->enqueue(codec::encode_envelope(env));
}

void DurableStore::wait(Ticket ticket) {
  // Durability stall as seen by the requesting thread — the counterpart of
  // the writer-side wal.fsync span, attached to the caller's trace.
  obs::Span wait_span(obs::Tracer::current(), "wal.wait");
  writer_->wait(ticket);
}

void DurableStore::append(const codec::Envelope& env) {
  writer_->append(codec::encode_envelope(env));
}

void DurableStore::append_async(const codec::Envelope& env) {
  writer_->append_async(codec::encode_envelope(env));
}

void DurableStore::flush() { writer_->flush(); }

std::uint64_t DurableStore::epoch() const {
  const sp::MutexLock lock(admin_mutex_);
  return epoch_;
}

void DurableStore::checkpoint(const Scanner& scan) {
  if (!writer_) throw std::logic_error("DurableStore::checkpoint: recover() first");
  const sp::MutexLock lock(admin_mutex_);
  const std::uint64_t old_epoch = epoch_;
  const std::uint64_t new_epoch = old_epoch + 1;

  // 1. Rotate: everything appended so far drains — durably — into the old
  //    WAL; new appends land in wal-<new_epoch>.
  writer_->rotate_to(wal_path(opts_.dir, new_epoch));

  // 2. Snapshot the live state into a temp file, then publish atomically.
  const std::string tmp = segment_path(opts_.dir, new_epoch) + ".tmp";
  std::uint64_t seg_bytes = 0;
  {
    SegmentWriter seg(tmp);
    scan([&](const codec::Envelope& env) { seg.add(env); });
    seg_bytes = seg.finish();
  }
  fs::rename(tmp, segment_path(opts_.dir, new_epoch));
  fsync_dir(opts_.dir);

  // 3. The old epoch is fully superseded: snapshot covers the old WAL (see
  //    the ordering note in store.hpp) and any older segment.
  fs::remove(wal_path(opts_.dir, old_epoch));
  std::error_code ec;
  fs::remove(segment_path(opts_.dir, old_epoch), ec);  // may not exist

  epoch_ = new_epoch;
  StoreMetrics& m = StoreMetrics::get();
  m.checkpoints.inc();
  m.segment_bytes.set(static_cast<std::int64_t>(seg_bytes));
}

bool DurableStore::maybe_checkpoint(const Scanner& scan) {
  if (writer_->current_file_bytes() < opts_.checkpoint_wal_bytes) return false;
  checkpoint(scan);
  return true;
}

}  // namespace sp::storage
