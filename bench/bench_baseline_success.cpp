// Baseline comparison (paper §I): the trivial all-answers scheme vs the
// threshold constructions. Sweeps receiver knowledge (how many of N = 6
// answers the receiver has) and reports access-success rates. The trivial
// scheme collapses to all-or-nothing; Construction 1/2 with k = 3 admit
// every receiver at or above the threshold — the paper's core flexibility
// argument, quantified.
#include <cstdio>

#include "core/session.hpp"
#include "core/trivial_scheme.hpp"

namespace {

using namespace sp::core;
using sp::crypto::Drbg;

Context make_context() {
  Context ctx;
  for (int i = 0; i < 6; ++i) ctx.add("q" + std::to_string(i), "answer" + std::to_string(i));
  return ctx;
}

}  // namespace

int main() {
  constexpr int kTrials = 8;
  constexpr std::size_t kThreshold = 3;
  const Context ctx = make_context();
  const auto object = sp::crypto::to_bytes("the shared object");

  std::printf("# Baseline: access success rate vs receiver knowledge (N=6, k=3 for C1/C2)\n");
  std::printf("# columns: known_answers  trivial_rate  c1_rate  c2_rate\n");

  // Trivial scheme: one shared object, many receivers.
  Drbg trivial_rng("baseline-trivial");
  const auto trivial = TrivialScheme::share(object, ctx, trivial_rng);

  for (std::size_t known = 0; known <= 6; ++known) {
    int trivial_ok = 0, c1_ok = 0, c2_ok = 0;
    for (int t = 0; t < kTrials; ++t) {
      // Public per-trial run label (not key material): seeds the deterministic run.
      const std::string run_label = "baseline-" + std::to_string(known) + "-" + std::to_string(t);
      Drbg krng(run_label + "-knowledge");
      const Knowledge k = Knowledge::partial(ctx, known, krng);

      trivial_ok += TrivialScheme::access(trivial, k).has_value() ? 1 : 0;

      SessionConfig cfg;
      cfg.pairing_preset = sp::ec::ParamPreset::kTest;  // success-rate only; speed over scale
      cfg.seed = run_label;
      Session session(cfg);
      const auto sharer = session.register_user("s");
      const auto receiver = session.register_user("r");
      session.befriend(sharer, receiver);
      const auto rc1 = session.share_c1(sharer, object, ctx, kThreshold, 6, sp::net::pc_profile());
      // C1's Verify draws a random question subset; allow the standard retry.
      c1_ok += session.access_with_retries(receiver, rc1.post_id, k, sp::net::pc_profile(), 6)
                       .success()
                   ? 1
                   : 0;
      const auto rc2 = session.share_c2(sharer, object, ctx, kThreshold, sp::net::pc_profile());
      c2_ok += session.access(receiver, rc2.post_id, k, sp::net::pc_profile()).success() ? 1 : 0;
    }
    std::printf("%14zu  %12.2f  %7.2f  %7.2f\n", known,
                static_cast<double>(trivial_ok) / kTrials, static_cast<double>(c1_ok) / kTrials,
                static_cast<double>(c2_ok) / kTrials);
  }
  std::printf("# expected shape: trivial = 0 until known == N; C1/C2 = 1 for known >= k\n");
  return 0;
}
