// Ablation: how the threshold k (not swept in the paper, which fixes k = 1)
// moves the C1-vs-C2 trade-off at fixed N = 10.
//
// DESIGN.md calls out the design choice this probes: C1 pays O(n) hashing +
// O(k) field interpolation (cheap), while C2 pays O(k) extra pairings at
// decryption — so raising k should widen C2's receiver-side deficit while
// leaving C1 nearly flat.
#include "fig10_common.hpp"

int main() {
  using namespace sp::bench;
  constexpr int kTrials = 2;
  constexpr std::size_t kN = 10;

  std::printf("# Ablation: threshold sweep at N=10 (paper fixes k=1)\n");
  std::printf("# columns: k  C1_sharer_ms C1_recv_ms  C2_sharer_ms C2_recv_ms  "
              "C2/C1_recv_ratio\n");
  for (std::size_t k = 1; k <= 10; k += 3) {
    const AvgCell c1 = run_avg(Scheme::kC1, kN, k, net::pc_profile(),
                            "abl-k" + std::to_string(k) + "-c1", kTrials);
    const AvgCell c2 = run_avg(Scheme::kC2, kN, k, net::pc_profile(),
                            "abl-k" + std::to_string(k) + "-c2", kTrials);
    std::printf("%2zu  %12.2f %10.2f  %12.2f %10.2f  %16.1f\n", k, c1.mean.sharer.total_ms(),
                c1.mean.receiver.total_ms(), c2.mean.sharer.total_ms(), c2.mean.receiver.total_ms(),
                c2.mean.receiver.total_ms() / std::max(c1.mean.receiver.total_ms(), 1e-9));
  }
  std::printf("# expected shape: C1 receiver ~flat in k; C2 receiver grows with k "
              "(2 extra pairings per threshold unit)\n");
  return 0;
}
