// Figure 10(c): Sharer's overhead for Implementation 1, PC vs Tablet.
// Paper findings to reproduce in shape: I1 performs better on PC than on
// the tablet, but overheads are insignificantly low on both devices.
#include "fig10_common.hpp"

int main() {
  using namespace sp::bench;
  constexpr int kTrials = 5;  // I1 is cheap; more trials smooth the jitter
  constexpr std::size_t kThreshold = 1;

  std::printf("# Fig 10(c): Sharer overhead for I1, PC vs Tablet\n");
  std::printf("# workload: 100-char message, 20-char answers, 50-char questions, k=1\n");
  std::printf("# columns: N  PC_local_ms PC_net_ms PC_total_ms  Tab_local_ms Tab_net_ms "
              "Tab_total_ms\n");
  for (std::size_t n = 2; n <= 10; ++n) {
    const AvgCell pc = run_avg(Scheme::kC1, n, kThreshold, net::pc_profile(),
                            "fig10c-pc-n" + std::to_string(n), kTrials);
    const AvgCell tab = run_avg(Scheme::kC1, n, kThreshold, net::tablet_profile(),
                             "fig10c-tab-n" + std::to_string(n), kTrials);
    std::printf("%2zu  %10.2f %9.2f %11.2f  %12.2f %10.2f %12.2f\n", n, pc.mean.sharer.local_ms,
                pc.mean.sharer.network_ms, pc.mean.sharer.total_ms(), tab.mean.sharer.local_ms,
                tab.mean.sharer.network_ms, tab.mean.sharer.total_ms());
  }
  std::printf("# expected shape: tablet local > PC local by a constant factor; "
              "both totals small\n");
  return 0;
}
