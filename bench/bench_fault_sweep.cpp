// Fault-sweep load generator (PR 5).
//
// Drives the 8-thread mixed C1/C2 serving load of bench_concurrent_access
// through the seeded fault-injection layer at uniform fault rates
// {0, 1%, 5%, 10%}, with the session's RetryPolicy absorbing transient
// faults. Per the fault determinism contract, thread t exclusively drives
// receiver t, so every (receiver, post) request series is issued from one
// thread in order and the fault schedule replays byte-for-byte per seed.
//
// Reported per rate: throughput, success rate, outcome split
// (granted / denied / deadline-exceeded), mean serving attempts, per-kind
// injected-fault counts, and latency percentiles where each request's
// latency = measured processing wall time + the modeled network *and*
// fault/backoff wait, accounted on seeded per-worker virtual wire clocks
// (fig10_common.hpp: VirtualWireClocks) instead of slept off — so the
// throughput a fault rate costs is reproducible per seed, not a function
// of scheduler oversleep on the CI runner.
//
// The retry-overhead A/B isolates what the retry layer itself costs when
// nothing fails: 8 threads, wire waits off, access_with_retries on an
// armed-but-silent injector (uniform rate 0) versus plain access() on a
// fault-free session — the PR 4 serving path. Acceptance bar: < 2%.
//
// Writes the sweep + overhead + a full metrics snapshot to BENCH_PR5.json.
//
// Usage: bench_fault_sweep [--quick] [--out PATH]
//   --quick  test preset, fewer requests (CI smoke; wire is virtual, so the
//            quick preset no longer compresses it)
//   --out    JSON output path (default BENCH_PR5.json)
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "fig10_common.hpp"
#include "obs/metrics.hpp"

namespace {

using sp::core::AccessResult;
using sp::core::Context;
using sp::core::Knowledge;
using sp::core::Session;
using sp::core::SessionConfig;
using sp::crypto::to_bytes;

constexpr std::size_t kThreads = 8;

struct BenchConfig {
  sp::ec::ParamPreset preset = sp::ec::ParamPreset::kFull;  // the 512-bit preset
  const char* preset_name = "full-512bit";
  std::size_t requests_per_thread = 25;  // 200 requests per rate
  double wire_scale = 1.0;   // fraction of modeled network+wait on the virtual wire clock
  int overhead_reps = 3;     // alternated on/off pairs in the retry-overhead A/B
  std::size_t overhead_tile = 2;  // A/B stream = tile x the sweep stream
  std::string out_path = "BENCH_PR5.json";
};

/// One per-rate serving universe: its own session (own fault schedule and
/// injector counters), one sharer, kThreads receiver friends, one C1 and one
/// C2 post at k = 2.
struct Rig {
  explicit Rig(double rate, const BenchConfig& bench) {
    SessionConfig cfg;
    cfg.pairing_preset = bench.preset;
    cfg.seed = "bench-pr5";
    if (rate >= 0) cfg.faults = sp::net::FaultPlan::uniform(rate, "bench-pr5-sweep");
    cfg.retry.max_attempts = 5;
    session = std::make_unique<Session>(cfg);
    sharer = session->register_user("sharer");
    for (std::size_t i = 0; i < kThreads; ++i) {
      receivers.push_back(session->register_user("receiver-" + std::to_string(i)));
      session->befriend(sharer, receivers.back());
    }
    ctx = Context({{"Where did we meet?", "Paris"},
                   {"What did we eat?", "pizza"},
                   {"Who hosted?", "Alice"},
                   {"Which month?", "June"}});
    c1_object = to_bytes("the shared event photo, say 100 bytes of payload padding......");
    c2_object = c1_object;
    c1_post = session->share_c1(sharer, c1_object, ctx, 2, 4, sp::net::pc_profile()).post_id;
    c2_post = session->share_c2(sharer, c2_object, ctx, 2, sp::net::pc_profile()).post_id;
  }

  std::unique_ptr<Session> session;
  sp::osn::UserId sharer = 0;
  std::vector<sp::osn::UserId> receivers;
  Context ctx;
  sp::crypto::Bytes c1_object, c2_object;
  std::string c1_post, c2_post;
};

struct RateStats {
  double fault_rate = 0;
  std::size_t issued = 0;
  std::size_t granted = 0;
  std::size_t denied = 0;
  std::size_t deadline = 0;
  std::uint64_t attempts = 0;
  double wall_ms = 0;              // real elapsed time of the (sleep-free) run
  double virtual_makespan_ms = 0;  // slowest worker's processing + virtual wire
  double throughput_rps = 0;       // requests per second of virtual makespan
  sp::bench::LatencySummary latency;
  std::array<std::uint64_t, sp::net::kFaultKindCount> injected{};

  [[nodiscard]] double success_rate() const {
    return issued == 0 ? 0.0 : static_cast<double>(granted) / static_cast<double>(issued);
  }
  [[nodiscard]] double mean_attempts() const {
    return issued == 0 ? 0.0 : static_cast<double>(attempts) / static_cast<double>(issued);
  }
};

/// One load run: thread t drives receiver t through `per_thread` requests
/// (7/8 C1, 1/8 C2), with retries iff `with_retries`. Each worker accounts
/// its request's modeled network + fault/backoff wait (scaled by
/// `wire_scale`) on its virtual wire clock, so throughput reflects what the
/// faults actually cost without paying or mis-measuring real sleeps.
RateStats run_load(const Rig& rig, std::size_t per_thread, double wire_scale,
                   bool with_retries) {
  sp::obs::MetricsRegistry run_registry;
  sp::obs::Histogram& latency = run_registry.histogram(
      "bench_request_latency_ms", "Per-request latency (processing + modeled waits)",
      sp::obs::Histogram::exponential_bounds(0.1, 1.3, 45));

  std::atomic<std::size_t> granted{0}, denied{0}, deadline{0};
  std::atomic<std::uint64_t> attempts{0};
  sp::bench::VirtualWireClocks clocks(kThreads);
  const Knowledge knows = Knowledge::full(rig.ctx);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::string& post = (i % 8 == 7) ? rig.c2_post : rig.c1_post;
        const auto start = std::chrono::steady_clock::now();
        const AccessResult result =
            with_retries
                ? rig.session->access_with_retries(rig.receivers[t], post, knows,
                                                   sp::net::pc_profile(), /*max_draws=*/4)
                : rig.session->access(rig.receivers[t], post, knows, sp::net::pc_profile());
        const double proc_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                .count();
        // Network time and fault/backoff waits both hold the receiver's
        // socket open; charging them to the worker's virtual clock is what
        // makes the sweep's throughput numbers mean something.
        const double wire_ms =
            (result.cost.network_ms() + result.cost.wait_ms()) * wire_scale;
        clocks.advance(t, proc_ms + wire_ms);
        latency.observe(proc_ms + wire_ms);
        attempts.fetch_add(static_cast<std::uint64_t>(result.attempts),
                           std::memory_order_relaxed);
        if (result.success()) {
          granted.fetch_add(1, std::memory_order_relaxed);
        } else if (result.error == sp::net::ServeError::kDeadlineExceeded) {
          deadline.fetch_add(1, std::memory_order_relaxed);
        } else {
          denied.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();

  RateStats stats;
  stats.issued = kThreads * per_thread;
  stats.granted = granted.load();
  stats.denied = denied.load();
  stats.deadline = deadline.load();
  stats.attempts = attempts.load();
  stats.wall_ms = wall_ms;
  stats.virtual_makespan_ms = clocks.makespan_ms();
  stats.throughput_rps =
      1000.0 * static_cast<double>(stats.issued) / stats.virtual_makespan_ms;
  stats.latency = sp::bench::summarize(latency);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.preset = sp::ec::ParamPreset::kTest;
      cfg.preset_name = "test-256bit";
      cfg.requests_per_thread = 6;  // 48 requests per rate
      // Wire time is virtual now, so quick mode keeps the full modeled
      // delay — compressing it bought CI wall time back when it was slept.
      cfg.overhead_reps = 1;
      cfg.overhead_tile = 1;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  const std::size_t issued_per_rate = kThreads * cfg.requests_per_thread;

  std::printf("# Fault sweep: %zu threads x %zu requests/thread per rate (7:1 C1:C2), "
              "preset %s, wire x%.2f, retries max_attempts=5\n",
              kThreads, cfg.requests_per_thread, cfg.preset_name, cfg.wire_scale);
  std::printf("# %6s %8s %8s %8s %9s %9s %12s %9s %9s\n", "rate", "granted", "denied",
              "deadln", "success", "attempts", "thruput_rps", "p50_ms", "p99_ms");

  std::vector<RateStats> sweep;
  std::vector<Rig> rigs;
  rigs.reserve(rates.size());
  for (std::size_t r = 0; r < rates.size(); ++r) {
    rigs.emplace_back(rates[r], cfg);
    if (r == 0) {
      // Warmup on the silent rig: pre-faults the fixed-base tables so the
      // first timed run isn't penalized, and validates the catalog grants.
      const RateStats warm = run_load(rigs[0], 2, 0.0, /*with_retries=*/true);
      if (warm.granted != warm.issued) {
        std::fprintf(stderr, "warmup: only %zu/%zu requests succeeded\n", warm.granted,
                     warm.issued);
        return 1;
      }
    }
    RateStats s = run_load(rigs[r], cfg.requests_per_thread, cfg.wire_scale,
                           /*with_retries=*/true);
    s.fault_rate = rates[r];
    const sp::net::FaultInjector* injector = rigs[r].session->fault_injector();
    for (std::size_t k = 0; k < sp::net::kFaultKindCount; ++k) {
      s.injected[k] = injector ? injector->injected(static_cast<sp::net::FaultKind>(k)) : 0;
    }
    if (s.granted + s.denied + s.deadline != s.issued) {
      std::fprintf(stderr, "rate %.2f: outcome split does not account for every request\n",
                   rates[r]);
      return 1;
    }
    std::printf("  %5.0f%% %8zu %8zu %8zu %8.2f%% %9.2f %12.2f %9.1f %9.1f\n",
                100.0 * rates[r], s.granted, s.denied, s.deadline, 100.0 * s.success_rate(),
                s.mean_attempts(), s.throughput_rps, s.latency.p50_ms, s.latency.p99_ms);
    sweep.push_back(std::move(s));
  }

  // Acceptance bars the sweep itself can check (deterministic per seed):
  // a silent schedule must not fail anything, and 5-attempt retries must
  // absorb a 1% fault rate to >= 99.5% end-to-end success.
  if (sweep[0].granted != sweep[0].issued) {
    std::fprintf(stderr, "rate 0: %zu/%zu granted — silent faults broke the clean path\n",
                 sweep[0].granted, sweep[0].issued);
    return 1;
  }
  if (sweep[1].success_rate() < 0.995) {
    std::fprintf(stderr, "rate 1%%: success rate %.4f is below the 99.5%% bar\n",
                 sweep[1].success_rate());
    return 1;
  }

  // -- Retry-layer overhead A/B ------------------------------------------
  // Wire waits off so the comparison is pure processing; the retries arm
  // keeps its armed-but-silent injector (rate 0) so the measured cost
  // includes the fault-tape draws a production deployment would pay. Both
  // arms alternate first per pair and keep their best-of to shed outliers.
  Rig plain_rig(-1.0, cfg);  // faults = nullopt: the PR 4 serving path
  const std::size_t ab_per_thread = cfg.requests_per_thread * cfg.overhead_tile;
  run_load(plain_rig, ab_per_thread, 0.0, /*with_retries=*/false);  // warm
  run_load(rigs[0], ab_per_thread, 0.0, /*with_retries=*/true);
  double retries_ms = 1e300;
  double plain_ms = 1e300;
  for (int rep = 0; rep < cfg.overhead_reps; ++rep) {
    const bool retries_first = (rep % 2 == 0);
    for (const bool arm_retries : {retries_first, !retries_first}) {
      double& best = arm_retries ? retries_ms : plain_ms;
      const Rig& rig = arm_retries ? rigs[0] : plain_rig;
      best = std::min(best, run_load(rig, ab_per_thread, 0.0, arm_retries).wall_ms);
    }
  }
  const double overhead_pct = 100.0 * (retries_ms - plain_ms) / plain_ms;
  std::printf("# retry-layer overhead @8 threads (wire off, %zu reqs): retries %.1f ms, "
              "plain %.1f ms, %.2f%%\n",
              kThreads * ab_per_thread, retries_ms, plain_ms, overhead_pct);

  auto& global = sp::obs::MetricsRegistry::global();
  if (global.series_count() == 0) {
    std::fprintf(stderr, "global metrics snapshot is empty — instrumentation did not record\n");
    return 1;
  }

  std::FILE* out = std::fopen(cfg.out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_fault_sweep\",\n");
  std::fprintf(out, "  \"preset\": \"%s\",\n", cfg.preset_name);
  std::fprintf(out, "  \"threads\": %zu,\n", kThreads);
  std::fprintf(out, "  \"requests_per_rate\": %zu,\n", issued_per_rate);
  std::fprintf(out, "  \"traffic_mix\": \"7/8 C1, 1/8 C2\",\n");
  std::fprintf(out, "  \"wire_scale\": %.2f,\n", cfg.wire_scale);
  std::fprintf(out,
               "  \"latency_model\": \"measured processing wall time + simnet network delay "
               "and fault/backoff waits accounted on seeded per-worker virtual wire clocks "
               "(no wall-clock sleeps; throughput = requests / virtual makespan)\",\n");
  std::fprintf(out, "  \"retry_policy\": {\"max_attempts\": 5, \"base_backoff_ms\": 25.0, "
                    "\"backoff_factor\": 2.0, \"max_backoff_ms\": 1000.0, "
                    "\"jitter_frac\": 0.25, \"deadline_ms\": 15000.0},\n");
  std::fprintf(out, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RateStats& s = sweep[i];
    std::fprintf(out,
                 "    {\"fault_rate\": %.2f, \"issued\": %zu, \"granted\": %zu, "
                 "\"denied\": %zu, \"deadline_exceeded\": %zu, \"success_rate\": %.4f, "
                 "\"mean_attempts\": %.3f,\n     \"faults_injected\": {",
                 s.fault_rate, s.issued, s.granted, s.denied, s.deadline, s.success_rate(),
                 s.mean_attempts());
    for (std::size_t k = 0; k < sp::net::kFaultKindCount; ++k) {
      std::fprintf(out, "\"%s\": %llu%s", to_string(static_cast<sp::net::FaultKind>(k)),
                   static_cast<unsigned long long>(s.injected[k]),
                   k + 1 < sp::net::kFaultKindCount ? ", " : "");
    }
    std::fprintf(out,
                 "},\n     \"wall_ms\": %.1f, \"virtual_makespan_ms\": %.1f, "
                 "\"throughput_rps\": %.2f, \"p50_ms\": %.1f, "
                 "\"p95_ms\": %.1f, \"p99_ms\": %.1f, \"max_ms\": %.1f}%s\n",
                 s.wall_ms, s.virtual_makespan_ms, s.throughput_rps, s.latency.p50_ms,
                 s.latency.p95_ms,
                 s.latency.p99_ms, s.latency.max_ms, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"success_rate_at_1pct\": %.4f,\n", sweep[1].success_rate());
  std::fprintf(out, "  \"retry_overhead\": {\n");
  std::fprintf(out, "    \"threads\": %zu,\n    \"wire_scale\": 0.0,\n", kThreads);
  std::fprintf(out, "    \"requests\": %zu,\n", kThreads * ab_per_thread);
  std::fprintf(out, "    \"ab_pairs\": %d,\n", cfg.overhead_reps);
  std::fprintf(out, "    \"retries_wall_ms\": %.2f,\n", retries_ms);
  std::fprintf(out, "    \"plain_access_wall_ms\": %.2f,\n", plain_ms);
  std::fprintf(out, "    \"overhead_pct\": %.2f\n  },\n", overhead_pct);
  std::fprintf(out, "  \"metrics\": %s\n}\n", global.to_json().c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", cfg.out_path.c_str());
  return 0;
}
