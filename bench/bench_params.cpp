// Ablation: security-parameter sweep. The paper runs one parameter set (the
// cpabe default, PBC Type-A ~512-bit); this shows how both constructions'
// local processing scales from toy (96-bit) through test (256-bit) to the
// paper scale (512-bit), and that C1's advantage is parameter-independent
// (hash/XOR work barely notices p).
#include <cstdio>

#include "core/session.hpp"

namespace {

using namespace sp::core;

struct Row {
  double c1_share_ms, c1_access_ms, c2_share_ms, c2_access_ms;
};

Row run(sp::ec::ParamPreset preset, const char* seed) {
  SessionConfig cfg;
  cfg.pairing_preset = preset;
  cfg.link = sp::net::loopback();  // isolate local processing
  cfg.seed = seed;
  Session session(cfg);
  const auto sharer = session.register_user("s");
  const auto receiver = session.register_user("r");
  session.befriend(sharer, receiver);

  Context ctx;
  for (int i = 0; i < 5; ++i) ctx.add("q" + std::to_string(i), "a" + std::to_string(i));
  const auto object = sp::crypto::to_bytes("100-character message, padded to the paper's size...");

  Row row{};
  const auto r1 = session.share_c1(sharer, object, ctx, 2, 5, sp::net::pc_profile());
  row.c1_share_ms = r1.cost.local_ms();
  const AccessResult a1 = session.access_with_retries(receiver, r1.post_id,
                                                      Knowledge::full(ctx),
                                                      sp::net::pc_profile(), 10);
  row.c1_access_ms = a1.cost.local_ms();

  const auto r2 = session.share_c2(sharer, object, ctx, 2, sp::net::pc_profile());
  row.c2_share_ms = r2.cost.local_ms();
  const auto a2 = session.access(receiver, r2.post_id, Knowledge::full(ctx),
                                 sp::net::pc_profile());
  row.c2_access_ms = a2.cost.local_ms();
  return row;
}

}  // namespace

int main() {
  std::printf("# Ablation: security-parameter sweep (local processing only, N=5, k=2)\n");
  std::printf("# columns: preset p_bits  C1_share_ms C1_access_ms  C2_share_ms C2_access_ms\n");
  struct {
    sp::ec::ParamPreset preset;
    const char* name;
  } presets[] = {{sp::ec::ParamPreset::kToy, "toy"},
                 {sp::ec::ParamPreset::kTest, "test"},
                 {sp::ec::ParamPreset::kFull, "full"}};
  for (const auto& [preset, name] : presets) {
    const auto& params = sp::ec::preset_params(preset);
    const Row row = run(preset, name);
    std::printf("%8s %6zu  %11.2f %12.2f  %11.2f %12.2f\n", name,
                params.fp->p().bit_length(), row.c1_share_ms, row.c1_access_ms, row.c2_share_ms,
                row.c2_access_ms);
  }
  std::printf("# expected shape: C2 cost grows steeply with p (pairings); C1 nearly flat "
              "(hashing + XOR + one signature)\n");
  return 0;
}
