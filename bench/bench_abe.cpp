// CP-ABE operation costs vs policy size — the decomposition behind
// Construction 2's local-processing curve (Setup once, Encrypt linear in
// leaves, KeyGen linear in attributes, Decrypt linear in leaves used).
// Runs at the 256-bit test preset to keep iteration counts healthy; the
// Fig. 10 harness exercises the full 512-bit scale.
#include <benchmark/benchmark.h>

#include "abe/cpabe.hpp"

namespace {

using namespace sp;
using abe::AccessTree;
using abe::CpAbe;

const ec::Curve& curve() {
  static const ec::Curve c(ec::preset_params(ec::ParamPreset::kTest));
  return c;
}

AccessTree policy(std::size_t leaves, std::size_t k) {
  std::vector<std::pair<std::string, std::string>> qa;
  for (std::size_t i = 0; i < leaves; ++i) {
    qa.emplace_back("q" + std::to_string(i), "a" + std::to_string(i));
  }
  return AccessTree::puzzle_policy(qa, k);
}

void BM_AbeSetup(benchmark::State& state) {
  const CpAbe scheme(curve());
  crypto::Drbg rng("bm-setup");
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.setup(rng));
  }
}
BENCHMARK(BM_AbeSetup);

void BM_AbeEncrypt(benchmark::State& state) {
  const CpAbe scheme(curve());
  crypto::Drbg rng("bm-encrypt");
  const auto [pk, mk] = scheme.setup(rng);
  const AccessTree tree = policy(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encrypt_key(pk, tree, rng));
  }
}
BENCHMARK(BM_AbeEncrypt)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_AbeKeygen(benchmark::State& state) {
  const CpAbe scheme(curve());
  crypto::Drbg rng("bm-keygen");
  const auto [pk, mk] = scheme.setup(rng);
  std::vector<std::string> attrs;
  for (int i = 0; i < state.range(0); ++i) {
    attrs.push_back(abe::LeafAttribute{"q" + std::to_string(i), "a" + std::to_string(i), false}
                        .canonical());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.keygen(mk, attrs, rng));
  }
}
BENCHMARK(BM_AbeKeygen)->Arg(1)->Arg(5)->Arg(10);

void BM_AbeDecrypt(benchmark::State& state) {
  // Decrypt cost scales with the number of leaves actually used (= k).
  const auto k = static_cast<std::size_t>(state.range(0));
  const CpAbe scheme(curve());
  crypto::Drbg rng("bm-decrypt");
  const auto [pk, mk] = scheme.setup(rng);
  const AccessTree tree = policy(10, k);
  const auto [ct, dem_key] = scheme.encrypt_key(pk, tree, rng);
  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < k; ++i) {
    attrs.push_back(abe::LeafAttribute{"q" + std::to_string(i), "a" + std::to_string(i), false}
                        .canonical());
  }
  const auto sk = scheme.keygen(mk, attrs, rng);
  for (auto _ : state) {
    auto out = scheme.decrypt_key(pk, sk, ct);
    if (!out || !crypto::ct_equal(*out, dem_key)) state.SkipWithError("decrypt failed");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AbeDecrypt)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_AbePerturbReconstruct(benchmark::State& state) {
  // The paper's §V-B tweak is metadata-only: hash answers in, substitute
  // answers out. Shows it costs microseconds next to the pairing work.
  const AccessTree tree = policy(static_cast<std::size_t>(state.range(0)), 1);
  std::map<std::string, std::string> answers;
  for (int i = 0; i < state.range(0); ++i) answers["q" + std::to_string(i)] = "a" + std::to_string(i);
  for (auto _ : state) {
    const AccessTree perturbed = tree.perturb();
    benchmark::DoNotOptimize(perturbed.reconstruct(answers));
  }
}
BENCHMARK(BM_AbePerturbReconstruct)->Arg(2)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
