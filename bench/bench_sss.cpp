// Shamir secret-sharing costs over the paper-scale field: split and
// reconstruct as functions of (k, n) — Construction 1's crypto bill.
#include <benchmark/benchmark.h>

#include "ec/params.hpp"
#include "sss/shamir.hpp"

namespace {

using namespace sp;

const sss::Shamir& shamir() {
  static const sss::Shamir s(ec::preset_params(ec::ParamPreset::kFull).fp);
  return s;
}

void BM_ShamirSplit(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  crypto::Drbg rng("bm-split");
  const crypto::BigInt secret = crypto::BigInt::from_bytes(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir().split(secret, k, n, rng));
  }
}
BENCHMARK(BM_ShamirSplit)
    ->Args({1, 5})
    ->Args({1, 10})
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({10, 10})
    ->Args({10, 20})
    ->Args({20, 40});

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  crypto::Drbg rng("bm-recon");
  const crypto::BigInt secret = crypto::BigInt::from_bytes(rng.bytes(32));
  const auto shares = shamir().split(secret, k, k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir().reconstruct(shares));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_ShareBlindUnblind(benchmark::State& state) {
  // The XOR blinding step (a_i ⊕ d_i) — essentially free next to hashing.
  crypto::Drbg rng("bm-blind");
  const crypto::BigInt secret = crypto::BigInt::from_bytes(rng.bytes(32));
  const auto shares = shamir().split(secret, 2, 2, rng);
  const auto wire = shamir().serialize(shares[0]);
  const auto answer = rng.bytes(20);
  for (auto _ : state) {
    auto blinded = crypto::xor_cycle(wire, answer);
    benchmark::DoNotOptimize(crypto::xor_cycle(blinded, answer));
  }
}
BENCHMARK(BM_ShareBlindUnblind);

}  // namespace

BENCHMARK_MAIN();
