// Figure 10(b): Receiver's overhead, Implementation 1 vs Implementation 2 on
// PC. Paper findings to reproduce in shape:
//   * I1 combined delay extremely low;
//   * I2 receiver delay noticeably lower than I2's sharer side but still
//     above I1 (KeyGen + pairing-heavy Decrypt + three-file download).
#include "fig10_common.hpp"

int main() {
  using namespace sp::bench;
  constexpr int kTrials = 3;
  constexpr std::size_t kThreshold = 1;

  std::printf("# Fig 10(b): Receiver overhead, I1 vs I2 on PC\n");
  std::printf("# workload: 100-char message, 20-char answers, 50-char questions, k=1\n");
  std::printf("# columns: N  I1_local_ms I1_net_ms I1_total_ms  I2_local_ms I2_net_ms "
              "I2_total_ms  I1_KB I2_KB  I1_sd I2_sd\n");
  for (std::size_t n = 2; n <= 10; ++n) {
    const AvgCell c1 = run_avg(Scheme::kC1, n, kThreshold, net::pc_profile(),
                            "fig10b-c1-n" + std::to_string(n), kTrials);
    const AvgCell c2 = run_avg(Scheme::kC2, n, kThreshold, net::pc_profile(),
                            "fig10b-c2-n" + std::to_string(n), kTrials);
    std::printf("%2zu  %10.2f %9.2f %11.2f  %11.2f %9.2f %11.2f  %6.2f %6.2f  %5.1f %5.1f\n",
                n, c1.mean.receiver.local_ms, c1.mean.receiver.network_ms,
                c1.mean.receiver.total_ms(), c2.mean.receiver.local_ms, c2.mean.receiver.network_ms,
                c2.mean.receiver.total_ms(), c1.mean.receiver.bytes / 1024.0,
                c2.mean.receiver.bytes / 1024.0, c1.receiver_total_sd, c2.receiver_total_sd);
  }
  std::printf("# expected shape: I1 tiny and flat; I2 above I1 but below I2's sharer side\n");
  return 0;
}
