// Cold-start durability benchmark (PR 8): populates a WAL-backed StorageHost
// with N posts (default 1M; --quick drops to 50k), checkpoints halfway so the
// on-disk history crosses a segment + WAL boundary (the realistic cold-start
// shape), then measures
//   * populate throughput (4 writer threads through the group-commit queue),
//   * cold-start recovery: best-of-3 reopen wall time and records/s,
//   * mixed read/write throughput (3/4 fetch, 1/4 store; 4 threads) on an
//     in-memory host vs the WAL-backed host reopened with fsync=batch,
// and writes the whole report to BENCH_PR8.json.
//
// --access-json PATH inlines a bench_concurrent_access JSON report under
// "concurrent_access"; that report carries the session-level WAL A/B and its
// 1.25x p50 acceptance bar, so the committed artifact holds the full PR 8
// acceptance story in one file.
//
// Populate runs fsync=never: the durability story exercised here is crash
// (SIGKILL) tolerance via the kernel page cache — the contract the recovery
// tests enforce (tests/storage/test_crash_recovery.cpp) — not power loss.
// The fsync cost itself shows up in the mixed-rw WAL arm, which reopens the
// store with fsync=batch.
//
// Usage: bench_storage [--quick] [--posts N] [--out PATH] [--access-json PATH]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/bytes.hpp"
#include "fig10_common.hpp"
#include "obs/metrics.hpp"
#include "osn/storage_host.hpp"
#include "storage/store.hpp"

namespace {

namespace fs = std::filesystem;
using sp::crypto::Bytes;
using sp::crypto::to_bytes;
using sp::osn::StorageHost;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// ~100-byte payload, distinct per post so recovery verification would catch
/// cross-wired records, padded to the size class the paper's encrypted
/// objects start at.
Bytes payload_for(std::uint64_t i) {
  std::string s = "post-" + std::to_string(i) + ":";
  s.resize(96, 'x');
  return to_bytes(s);
}

/// Fills `dh` with posts [lo, hi) from `threads` writers (the group-commit
/// path needs concurrent appenders to batch). Collects every 64th URL for
/// the later read mix.
void fill(StorageHost& dh, std::uint64_t lo, std::uint64_t hi, std::size_t threads,
          std::vector<std::string>& sample_urls) {
  std::vector<std::vector<std::string>> per(threads);
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = lo + t; i < hi; i += threads) {
        std::string url = dh.store(payload_for(i));
        if (i % 64 == 0) per[t].push_back(std::move(url));
      }
    });
  }
  for (auto& w : writers) w.join();
  for (auto& p : per) {
    sample_urls.insert(sample_urls.end(), std::make_move_iterator(p.begin()),
                       std::make_move_iterator(p.end()));
  }
}

struct MixStats {
  double wall_ms = 0;
  double ops_per_sec = 0;
  sp::bench::LatencySummary all, read, write;
};

/// 3/4 fetch, 1/4 store from `threads` workers; read targets stride the
/// sampled URL set with a Fibonacci-hash step so successive ops hit
/// different shards. On a durable host every store is acknowledged-durable
/// per the host's fsync policy before its sample lands.
MixStats mixed_rw(StorageHost& dh, const std::vector<std::string>& urls, std::size_t ops,
                  std::size_t threads) {
  sp::obs::MetricsRegistry run_registry;
  const auto bounds = sp::obs::Histogram::exponential_bounds(0.0002, 1.3, 60);
  sp::obs::Histogram& all = run_registry.histogram("bench_host_mixed_ms", "Mixed op", bounds);
  sp::obs::Histogram& read = run_registry.histogram("bench_host_read_ms", "Fetch", bounds);
  sp::obs::Histogram& write = run_registry.histogram("bench_host_write_ms", "Store", bounds);

  std::atomic<std::size_t> next{0};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= ops) return;
        const auto start = std::chrono::steady_clock::now();
        if (i % 4 == 3) {
          (void)dh.store(payload_for(1'000'000'000ull + i));
          const double ms = ms_since(start);
          all.observe(ms);
          write.observe(ms);
        } else {
          (void)dh.fetch(urls[(i * 2654435761ull) % urls.size()]);
          const double ms = ms_since(start);
          all.observe(ms);
          read.observe(ms);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  MixStats s;
  s.wall_ms = ms_since(wall_start);
  s.ops_per_sec = 1000.0 * static_cast<double>(ops) / s.wall_ms;
  s.all = sp::bench::summarize(all);
  s.read = sp::bench::summarize(read);
  s.write = sp::bench::summarize(write);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t posts = 1'000'000;
  std::string out_path = "BENCH_PR8.json";
  std::string access_json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      posts = 50'000;
    } else if (arg == "--posts" && i + 1 < argc) {
      posts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--access-json" && i + 1 < argc) {
      access_json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--posts N] [--out PATH] [--access-json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  constexpr std::size_t kWriters = 4;

  const fs::path dir =
      fs::temp_directory_path() / ("sp-bench-storage-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(dir, ec);
  auto opts = [&dir](sp::storage::WalWriter::Fsync f) {
    sp::storage::DurableStore::Options o;
    o.dir = dir.string();
    o.wal.fsync = f;
    return o;
  };

  // -- populate ------------------------------------------------------------
  std::vector<std::string> sample_urls;
  double populate_ms = 0;
  double checkpoint_ms = 0;
  std::uint64_t wal_bytes_at_close = 0;
  {
    StorageHost dh(opts(sp::storage::WalWriter::Fsync::kNever));
    const auto t0 = std::chrono::steady_clock::now();
    fill(dh, 0, posts / 2, kWriters, sample_urls);
    const auto ck0 = std::chrono::steady_clock::now();
    dh.checkpoint();
    checkpoint_ms = ms_since(ck0);
    fill(dh, posts / 2, posts, kWriters, sample_urls);
    dh.sync();
    populate_ms = ms_since(t0);
    wal_bytes_at_close = dh.durable()->wal_bytes();
    if (dh.object_count() != posts) {
      std::fprintf(stderr, "populate: %zu/%llu posts stored\n", dh.object_count(),
                   static_cast<unsigned long long>(posts));
      return 1;
    }
  }
  const double populate_rps = 1000.0 * static_cast<double>(posts) / populate_ms;
  std::printf("# populate: %llu posts, %zu writers, %.0f ms (%.0f posts/s), checkpoint %.0f ms\n",
              static_cast<unsigned long long>(posts), kWriters, populate_ms, populate_rps,
              checkpoint_ms);

  // -- cold-start recovery -------------------------------------------------
  // Reopen the directory from scratch: segment load + WAL replay + index
  // rebuild, timed as the host constructor. recover() never rewrites clean
  // files, so repeated trials see identical on-disk state; best-of-3 sheds
  // page-cache warmup noise.
  constexpr int kTrials = 3;
  double trials_ms[kTrials] = {};
  double best_ms = 1e300;
  sp::storage::DurableStore::RecoveryStats rec{};
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    StorageHost dh(opts(sp::storage::WalWriter::Fsync::kNever));
    trials_ms[t] = ms_since(t0);
    best_ms = std::min(best_ms, trials_ms[t]);
    rec = dh.recovery_stats();
    if (dh.object_count() != posts) {
      std::fprintf(stderr, "recovery trial %d: %zu/%llu posts\n", t, dh.object_count(),
                   static_cast<unsigned long long>(posts));
      return 1;
    }
  }
  const std::uint64_t replayed = rec.segment_records + rec.wal_records;
  const double recovery_rps = 1000.0 * static_cast<double>(replayed) / best_ms;
  std::printf(
      "# cold-start recovery: best %.0f ms of %d trials (%.0f records/s; "
      "%llu segment + %llu wal records)\n",
      best_ms, kTrials, recovery_rps, static_cast<unsigned long long>(rec.segment_records),
      static_cast<unsigned long long>(rec.wal_records));

  // -- mixed read/write: in-memory vs WAL ----------------------------------
  const std::size_t mix_ops = static_cast<std::size_t>(posts / 5);
  MixStats mem_stats;
  {
    StorageHost mem;  // in-memory arm, pre-filled with the same corpus
    std::vector<std::string> mem_urls;
    fill(mem, 0, posts, kWriters, mem_urls);
    mixed_rw(mem, mem_urls, mix_ops / 10 + 1, kWriters);  // warm
    mem_stats = mixed_rw(mem, mem_urls, mix_ops, kWriters);
  }
  MixStats wal_stats;
  {
    StorageHost dh(opts(sp::storage::WalWriter::Fsync::kBatch));
    mixed_rw(dh, sample_urls, mix_ops / 10 + 1, kWriters);  // warm
    wal_stats = mixed_rw(dh, sample_urls, mix_ops, kWriters);
  }
  const double host_p50_ratio = wal_stats.all.p50_ms / mem_stats.all.p50_ms;
  std::printf(
      "# mixed rw (%zu ops, 1/4 writes, %zu threads): mem %.0f ops/s, wal(batch) %.0f ops/s, "
      "p50 ratio %.3f\n",
      mix_ops, kWriters, mem_stats.ops_per_sec, wal_stats.ops_per_sec, host_p50_ratio);
  std::printf("#   write p50: mem %.4f ms, wal %.4f ms\n", mem_stats.write.p50_ms,
              wal_stats.write.p50_ms);

  fs::remove_all(dir, ec);

  // -- report --------------------------------------------------------------
  std::string access_json = "null";
  if (!access_json_path.empty()) {
    std::ifstream in(access_json_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", access_json_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    access_json = buf.str();
    while (!access_json.empty() && std::isspace(static_cast<unsigned char>(access_json.back()))) {
      access_json.pop_back();
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  auto mix_json = [](const MixStats& s) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"wall_ms\": %.1f, \"ops_per_sec\": %.1f, \"p50_ms\": %.4f, "
                  "\"p95_ms\": %.4f, \"read_p50_ms\": %.4f, \"write_p50_ms\": %.4f, "
                  "\"write_p95_ms\": %.4f}",
                  s.wall_ms, s.ops_per_sec, s.all.p50_ms, s.all.p95_ms, s.read.p50_ms,
                  s.write.p50_ms, s.write.p95_ms);
    return std::string(buf);
  };
  std::fprintf(out, "{\n  \"bench\": \"bench_storage\",\n");
  std::fprintf(out, "  \"posts\": %llu,\n", static_cast<unsigned long long>(posts));
  std::fprintf(out, "  \"payload_bytes\": 96,\n");
  std::fprintf(out, "  \"populate\": {\"threads\": %zu, \"fsync\": \"never\", "
                    "\"wall_ms\": %.1f, \"posts_per_sec\": %.1f, \"checkpoint_ms\": %.1f, "
                    "\"checkpoint_at\": %llu, \"wal_bytes_at_close\": %llu},\n",
               kWriters, populate_ms, populate_rps, checkpoint_ms,
               static_cast<unsigned long long>(posts / 2),
               static_cast<unsigned long long>(wal_bytes_at_close));
  std::fprintf(out, "  \"cold_start_recovery\": {\"trials_ms\": [%.1f, %.1f, %.1f], "
                    "\"best_ms\": %.1f, \"segment_records\": %llu, \"wal_records\": %llu, "
                    "\"records_per_sec\": %.1f, \"verified_object_count\": %llu},\n",
               trials_ms[0], trials_ms[1], trials_ms[2], best_ms,
               static_cast<unsigned long long>(rec.segment_records),
               static_cast<unsigned long long>(rec.wal_records), recovery_rps,
               static_cast<unsigned long long>(posts));
  std::fprintf(out, "  \"host_mixed_rw\": {\n");
  std::fprintf(out, "    \"ops\": %zu,\n    \"threads\": %zu,\n    \"write_fraction\": 0.25,\n",
               mix_ops, kWriters);
  std::fprintf(out, "    \"memory\": %s,\n", mix_json(mem_stats).c_str());
  std::fprintf(out, "    \"wal_batch\": %s,\n", mix_json(wal_stats).c_str());
  std::fprintf(out, "    \"p50_ratio\": %.3f\n  },\n", host_p50_ratio);
  std::fprintf(out, "  \"concurrent_access\": %s\n}\n", access_json.c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
