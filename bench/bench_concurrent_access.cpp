// Concurrent serving-core load generator (PR 3) + instrumentation overhead
// measurement (PR 4).
//
// Models the paper's deployment front-end under receiver load: a fixed
// catalog of posts (mixed Construction 1 / Construction 2), a stream of
// access requests fanned over 1/2/4/8 worker threads, and per-request
// latency = measured processing wall time + the simnet-modeled network
// delay, which each worker accounts on a seeded VIRTUAL wire clock
// (fig10_common.hpp: VirtualWireClocks) rather than sleeping it off — the
// modeled delay is deterministic per seed, so the virtual makespan is
// reproducible where a sleep-paced run inherited scheduler jitter and CI
// oversleep. The serving reality measured is unchanged: receiver requests
// are network-dominated, so a thread-safe core overlaps many in-flight
// requests' wire waits even when their crypto serializes on few cores —
// which is exactly what per-worker clocks + max-over-workers makespan
// compute.
//
// Latency percentiles come from an obs::Histogram (a private per-run
// registry), not from sorting raw sample vectors — the bench reports exactly
// what a production scrape of the same instrument would report.
//
// The PR 4 section A/Bs the 8-thread run with the global MetricsRegistry
// recording vs no-op (wire waits off, so pure processing is compared) and
// reports the relative overhead; the acceptance bar is < 2%.
//
// The PR 7 section splits the latency series per scheme (the acceptance bar
// for the batch-verify pipeline is on C2 access latency specifically, and a
// 7:1 mix would bury it in the aggregate), separating measured processing
// time from the modeled wire wait so the crypto-path improvement is visible
// next to the network floor, and adds a per-core verify-throughput step
// (requests/s/thread at each thread count).
//
// The PR 8 section A/Bs durability: two fresh sessions with identical crypto
// config — one in-memory, one WAL-backed (fsync=batch) on a throwaway
// directory — serve the same mixed read/write stream (every 4th operation is
// an upload-path write) at 8 threads. Acceptance: the WAL arm's p50 within
// 1.25x of the in-memory p50.
//
// The PR 9 section A/Bs the request-lifecycle tracer: wire off, tracer
// disabled vs enabled at 1% head sampling (the production posture).
// Acceptance: <= 2% overhead at 1% sampling; the disabled arm is the
// baseline because a disabled tracer's fast path is a single relaxed atomic
// load per would-be span. See the section comment for why it runs one
// worker thread and reports a paired-median delta.
//
// Reports aggregate throughput and p50/p95/p99 latency per thread count and
// writes the series + overheads + the WAL A/B + a full metrics snapshot to
// BENCH_PR9.json.
//
// Usage: bench_concurrent_access [--quick] [--out PATH]
//   --quick  test preset, fewer requests (CI smoke; wire is virtual, so the
//            quick preset no longer compresses it)
//   --out    JSON output path (default BENCH_PR9.json)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "core/verify_queue.hpp"
#include "crypto/sha256.hpp"
#include "fig10_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using sp::core::AccessResult;
using sp::core::Context;
using sp::core::Knowledge;
using sp::core::Session;
using sp::core::SessionConfig;
using sp::crypto::to_bytes;

struct BenchConfig {
  sp::ec::ParamPreset preset = sp::ec::ParamPreset::kFull;  // the 512-bit preset
  const char* preset_name = "full-512bit";
  std::size_t requests = 48;
  double wire_scale = 1.0;      // fraction of modeled network delay on the virtual wire clock
  int overhead_reps = 6;        // alternated on/off pairs in the overhead A/B
  std::size_t overhead_tile = 4;  // A/B request stream = tile x the scaling stream
  std::string out_path = "BENCH_PR9.json";
};

struct RunStats {
  std::size_t threads = 0;
  std::size_t requests = 0;
  std::size_t granted = 0;
  double wall_ms = 0;            // real elapsed time of the (sleep-free) run
  double virtual_makespan_ms = 0;  // slowest worker's processing + virtual wire
  double throughput_rps = 0;       // requests per second of virtual makespan
  sp::bench::LatencySummary latency;
  // Per-scheme split: total = processing + modeled wire, proc = processing
  // only. The C2 rows are the batch-verify pipeline's acceptance series.
  sp::bench::LatencySummary c1_total, c1_proc;
  sp::bench::LatencySummary c2_total, c2_proc;
};

/// One load run: `threads` workers drain the shared request stream. Request
/// latencies land in a run-private registry histogram; the returned summary
/// is that histogram's view. `is_c2[i]` routes request i's samples to the
/// per-scheme histograms (empty = skip the per-scheme split).
RunStats run_load(const Session& session, const std::vector<Session::AccessRequest>& requests,
                  std::size_t threads, double wire_scale,
                  const std::vector<bool>& is_c2 = {}) {
  // Fine-grained bounds (0.1 ms .. ~10 s, x1.3 steps) so interpolated p99
  // has useful resolution; the private registry keeps bench samples out of
  // the serving snapshot.
  sp::obs::MetricsRegistry run_registry;
  const auto bounds = sp::obs::Histogram::exponential_bounds(0.1, 1.3, 45);
  sp::obs::Histogram& latency = run_registry.histogram(
      "bench_request_latency_ms", "Per-request latency (processing + realized wire wait)",
      bounds);
  sp::obs::Histogram& c1_total = run_registry.histogram(
      "bench_c1_latency_ms", "C1 request latency (processing + wire)", bounds);
  sp::obs::Histogram& c1_proc = run_registry.histogram(
      "bench_c1_proc_ms", "C1 request processing time", bounds);
  sp::obs::Histogram& c2_total = run_registry.histogram(
      "bench_c2_latency_ms", "C2 request latency (processing + wire)", bounds);
  sp::obs::Histogram& c2_proc = run_registry.histogram(
      "bench_c2_proc_ms", "C2 request processing time", bounds);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> granted{0};
  sp::bench::VirtualWireClocks clocks(threads);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        const auto& req = requests[i];
        const auto start = std::chrono::steady_clock::now();
        const AccessResult result = session.access(req.receiver, req.post_id, req.knowledge,
                                                   req.device);
        const double proc_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                .count();
        // The modeled wire time keeps this worker "on the socket" — it goes
        // on the worker's virtual clock (not a real sleep), which is what
        // lets the makespan reflect overlapped in-flight requests.
        const double wire_ms = result.cost.network_ms() * wire_scale;
        clocks.advance(t, proc_ms + wire_ms);
        latency.observe(proc_ms + wire_ms);
        if (!is_c2.empty()) {
          (is_c2[i] ? c2_total : c1_total).observe(proc_ms + wire_ms);
          (is_c2[i] ? c2_proc : c1_proc).observe(proc_ms);
        }
        if (result.success()) granted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();

  RunStats stats;
  stats.threads = threads;
  stats.requests = requests.size();
  stats.granted = granted.load();
  stats.wall_ms = wall_ms;
  stats.virtual_makespan_ms = clocks.makespan_ms();
  stats.throughput_rps =
      1000.0 * static_cast<double>(requests.size()) / stats.virtual_makespan_ms;
  stats.latency = sp::bench::summarize(latency);
  stats.c1_total = sp::bench::summarize(c1_total);
  stats.c1_proc = sp::bench::summarize(c1_proc);
  stats.c2_total = sp::bench::summarize(c2_total);
  stats.c2_proc = sp::bench::summarize(c2_proc);
  return stats;
}

/// Process CPU time in milliseconds. The tracing A/B compares on this, not
/// wall time: tracer overhead is pure CPU work, and on a shared runner wall
/// time carries steal/frequency noise an order of magnitude larger than the
/// effect being measured.
double process_cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return 1000.0 * static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e6;
}

struct Catalog {
  std::vector<sp::osn::UserId> receivers;
  std::vector<std::string> c1_posts;
  std::vector<std::string> c2_posts;
};

/// The standard bench catalog: one sharer, 8 receiver friends, 6 C1 posts +
/// 2 C2 posts of the same object. Factored out so the PR 8 durability A/B
/// can build identical catalogs in fresh sessions.
Catalog build_catalog(Session& session, const Context& ctx, const sp::crypto::Bytes& object) {
  Catalog cat;
  const auto sharer = session.register_user("sharer");
  for (int i = 0; i < 8; ++i) {
    cat.receivers.push_back(session.register_user("receiver-" + std::to_string(i)));
    session.befriend(sharer, cat.receivers.back());
  }
  for (int i = 0; i < 6; ++i) {
    cat.c1_posts.push_back(
        session.share_c1(sharer, object, ctx, 2, 4, sp::net::pc_profile()).post_id);
  }
  for (int i = 0; i < 2; ++i) {
    cat.c2_posts.push_back(session.share_c2(sharer, object, ctx, 2, sp::net::pc_profile()).post_id);
  }
  return cat;
}

/// The 7/8 C1, 1/8 C2 request stream over a catalog — the paper's I1 is the
/// common path, I2 the heavy tail. Fully deterministic given the index.
std::vector<Session::AccessRequest> make_request_stream(const Catalog& cat, const Context& ctx,
                                                        std::size_t n,
                                                        std::vector<bool>* is_c2_out) {
  std::vector<Session::AccessRequest> requests(n);
  std::vector<bool> is_c2(n);
  for (std::size_t i = 0; i < n; ++i) {
    requests[i].receiver = cat.receivers[i % cat.receivers.size()];
    is_c2[i] = (i % 8 == 7);
    requests[i].post_id =
        is_c2[i] ? cat.c2_posts[i % cat.c2_posts.size()] : cat.c1_posts[i % cat.c1_posts.size()];
    requests[i].knowledge = Knowledge::full(ctx);
    requests[i].device = sp::net::pc_profile();
  }
  if (is_c2_out != nullptr) *is_c2_out = std::move(is_c2);
  return requests;
}

struct MixedRwStats {
  std::size_t ops = 0;
  std::size_t writes = 0;
  double wall_ms = 0;              // real elapsed time of the (sleep-free) run
  double virtual_makespan_ms = 0;  // slowest worker's processing + virtual wire
  double ops_per_sec = 0;          // operations per second of virtual makespan
  sp::bench::LatencySummary all, read, write;
};

/// PR 8 durability A/B load: the access stream with every 4th operation
/// replaced by a write — alternating DH blob store / SP record store, the
/// upload half of the serving mix. On a durable session store()/
/// store_record() return only once the mutation's WAL envelope is committed
/// per the fsync policy, so a WAL stall lands in exactly these samples.
/// Reads account their modeled wire wait on the virtual clock like run_load.
MixedRwStats run_mixed_rw(Session& session, const std::vector<Session::AccessRequest>& requests,
                          std::size_t threads, double wire_scale) {
  sp::obs::MetricsRegistry run_registry;
  const auto bounds = sp::obs::Histogram::exponential_bounds(0.01, 1.3, 55);
  sp::obs::Histogram& all = run_registry.histogram(
      "bench_mixed_rw_ms", "Mixed read/write op latency", bounds);
  sp::obs::Histogram& read = run_registry.histogram(
      "bench_mixed_read_ms", "Access latency within the mixed stream", bounds);
  sp::obs::Histogram& write = run_registry.histogram(
      "bench_mixed_write_ms", "Acknowledged-durable write latency", bounds);
  const auto payload =
      to_bytes("ciphertext-shaped upload payload: 64 bytes of filler padding..");

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> write_ops{0};
  std::atomic<std::size_t> failures{0};
  sp::bench::VirtualWireClocks clocks(threads);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        const auto start = std::chrono::steady_clock::now();
        if (i % 4 == 3) {
          if ((i / 4) % 2 == 0) {
            (void)session.storage_host().store(payload);
          } else {
            (void)session.service_provider().store_record(payload);
          }
          const double ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                  .count();
          clocks.advance(t, ms);
          all.observe(ms);
          write.observe(ms);
          write_ops.fetch_add(1, std::memory_order_relaxed);
        } else {
          const auto& req = requests[i];
          const AccessResult result =
              session.access(req.receiver, req.post_id, req.knowledge, req.device);
          const double proc_ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                  .count();
          const double wire_ms = result.cost.network_ms() * wire_scale;
          clocks.advance(t, proc_ms + wire_ms);
          all.observe(proc_ms + wire_ms);
          read.observe(proc_ms + wire_ms);
          if (!result.success()) failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (failures.load() != 0) {
    std::fprintf(stderr, "mixed rw: %zu accesses denied\n", failures.load());
    std::exit(1);
  }
  MixedRwStats s;
  s.ops = requests.size();
  s.writes = write_ops.load();
  s.wall_ms = wall_ms;
  s.virtual_makespan_ms = clocks.makespan_ms();
  s.ops_per_sec = 1000.0 * static_cast<double>(requests.size()) / s.virtual_makespan_ms;
  s.all = sp::bench::summarize(all);
  s.read = sp::bench::summarize(read);
  s.write = sp::bench::summarize(write);
  return s;
}

struct VerifyThroughput {
  std::size_t threads = 0;
  std::size_t batches = 0;
  double wall_ms = 0;
  double batches_per_sec = 0;
  double per_core_rps = 0;  // batches/s divided by the request thread count
};

/// PR 7 verify-throughput step: `threads` request threads push SP-style
/// salted-hash check batches (the Construction 1/2 verify workload) through
/// ONE shared VerifyQueue and wait, exactly the Session topology. Reported
/// per-core rate = completed batches/s per request thread; a flat per-core
/// line as threads grow is the "no cross-request convoy" acceptance signal.
VerifyThroughput run_verify_throughput(sp::core::VerifyQueue& queue, std::size_t threads,
                                       std::size_t batches_per_thread,
                                       std::size_t checks_per_batch) {
  // The check itself mirrors Construction1::verify: hash(salt || answer) and
  // compare against the stored digest.
  const auto salt = to_bytes("verify-throughput-salt");
  const auto answer = to_bytes("Paris");
  auto salted = salt;
  salted.insert(salted.end(), answer.begin(), answer.end());
  const auto expected = sp::crypto::Sha256::hash(salted);

  std::atomic<std::size_t> mismatches{0};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t b = 0; b < batches_per_thread; ++b) {
        auto batch = queue.batch();
        batch.add([&] {
          for (std::size_t c = 0; c < checks_per_batch; ++c) {
            auto probe = salt;
            probe.insert(probe.end(), answer.begin(), answer.end());
            if (sp::crypto::Sha256::hash(probe) != expected) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
        batch.wait();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (mismatches.load() != 0) {
    std::fprintf(stderr, "verify throughput: %zu hash mismatches\n", mismatches.load());
    std::exit(1);
  }
  VerifyThroughput vt;
  vt.threads = threads;
  vt.batches = threads * batches_per_thread;
  vt.wall_ms = wall_ms;
  vt.batches_per_sec = 1000.0 * static_cast<double>(vt.batches) / wall_ms;
  vt.per_core_rps = vt.batches_per_sec / static_cast<double>(threads);
  return vt;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.preset = sp::ec::ParamPreset::kTest;
      cfg.preset_name = "test-256bit";
      cfg.requests = 16;
      // Wire time is virtual now, so quick mode keeps the full modeled
      // delay — compressing it bought CI wall time back when it was slept.
      cfg.overhead_reps = 1;
      cfg.overhead_tile = 1;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  SessionConfig session_cfg;
  session_cfg.pairing_preset = cfg.preset;
  session_cfg.seed = "bench-pr3";
  Session session(session_cfg);

  const Context ctx({{"Where did we meet?", "Paris"},
                     {"What did we eat?", "pizza"},
                     {"Who hosted?", "Alice"},
                     {"Which month?", "June"},
                     {"Which city hosted the afterparty?", "Lyon"}});
  const auto object = to_bytes("the shared event photo, say 100 bytes of payload padding......");
  const Catalog cat = build_catalog(session, ctx, object);

  std::vector<bool> is_c2;
  const std::vector<Session::AccessRequest> requests =
      make_request_stream(cat, ctx, cfg.requests, &is_c2);

  // Warmup + API validation: one access_parallel batch must grant everything
  // (it also pre-faults the fixed-base tables so run 1 isn't penalized).
  const auto warmup = session.access_parallel(requests, 4);
  std::size_t warm_ok = 0;
  for (const auto& r : warmup) warm_ok += r.success() ? 1 : 0;
  if (warm_ok != warmup.size()) {
    std::fprintf(stderr, "warmup: only %zu/%zu requests succeeded\n", warm_ok, warmup.size());
    return 1;
  }

  std::printf("# Concurrent access load: %zu requests (7:1 C1:C2), preset %s, wire x%.2f\n",
              cfg.requests, cfg.preset_name, cfg.wire_scale);
  std::printf("# %7s %9s %12s %9s %9s %9s\n", "threads", "vwall_ms", "thruput_rps", "p50_ms",
              "p95_ms", "p99_ms");
  std::vector<RunStats> series;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const RunStats s = run_load(session, requests, threads, cfg.wire_scale, is_c2);
    if (s.granted != s.requests) {
      std::fprintf(stderr, "run %zu threads: only %zu/%zu granted\n", threads, s.granted,
                   s.requests);
      return 1;
    }
    std::printf("  %7zu %9.1f %12.2f %9.1f %9.1f %9.1f\n", s.threads, s.virtual_makespan_ms,
                s.throughput_rps, s.latency.p50_ms, s.latency.p95_ms, s.latency.p99_ms);
    series.push_back(s);
  }
  const double speedup = series.back().throughput_rps / series.front().throughput_rps;
  std::printf("# aggregate throughput speedup, 8 threads vs 1: %.2fx\n", speedup);

  // -- PR 7: C2-focused latency series -----------------------------------
  // The mixed stream carries only 1/8 C2 traffic, too few samples for stable
  // C2 percentiles; this dedicated all-C2 stream (same catalog, same
  // session) is the acceptance series for the batch-verify pipeline. The
  // processing column isolates the crypto path from the modeled wire floor.
  const std::size_t c2_requests_n = std::max<std::size_t>(cfg.requests / 2, 8);
  std::vector<Session::AccessRequest> c2_stream(c2_requests_n);
  std::vector<bool> c2_flags(c2_requests_n, true);
  for (std::size_t i = 0; i < c2_requests_n; ++i) {
    c2_stream[i].receiver = cat.receivers[i % cat.receivers.size()];
    c2_stream[i].post_id = cat.c2_posts[i % cat.c2_posts.size()];
    c2_stream[i].knowledge = Knowledge::full(ctx);
    c2_stream[i].device = sp::net::pc_profile();
  }
  std::printf("# C2-only stream: %zu requests\n", c2_requests_n);
  std::printf("# %7s %9s %9s %9s %9s\n", "threads", "tot_p50", "tot_p95", "proc_p50",
              "proc_p95");
  std::vector<RunStats> c2_series;
  for (const std::size_t threads : {1u, 8u}) {
    const RunStats s = run_load(session, c2_stream, threads, cfg.wire_scale, c2_flags);
    if (s.granted != s.requests) {
      std::fprintf(stderr, "C2 run %zu threads: only %zu/%zu granted\n", threads, s.granted,
                   s.requests);
      return 1;
    }
    std::printf("  %7zu %9.1f %9.1f %9.1f %9.1f\n", s.threads, s.c2_total.p50_ms,
                s.c2_total.p95_ms, s.c2_proc.p50_ms, s.c2_proc.p95_ms);
    c2_series.push_back(s);
  }

  // -- PR 7: per-core verify throughput ----------------------------------
  // The raw check-batch pipeline, decoupled from pairings and wire waits:
  // how many request batches/s one shared VerifyQueue sustains per request
  // thread as concurrency grows.
  const std::size_t vt_batches = cfg.overhead_tile > 1 ? 400 : 50;
  sp::core::VerifyQueue verify_queue;
  std::printf("# verify throughput: %zu batches/thread, 8 checks/batch\n", vt_batches);
  std::printf("# %7s %9s %12s %12s\n", "threads", "wall_ms", "batches_ps", "per_core_ps");
  std::vector<VerifyThroughput> vt_series;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const VerifyThroughput vt = run_verify_throughput(verify_queue, threads, vt_batches, 8);
    std::printf("  %7zu %9.1f %12.1f %12.1f\n", vt.threads, vt.wall_ms, vt.batches_per_sec,
                vt.per_core_rps);
    vt_series.push_back(vt);
  }

  // -- PR 4: instrumentation overhead A/B --------------------------------
  // 8 threads, wire waits OFF: with sleeps in the loop the ~ns-scale
  // instrument cost would vanish under scheduler noise, so the comparison is
  // pure processing. The request stream is tiled longer than the scaling runs
  // so each arm runs long enough that OS jitter is well under a percent, the
  // arm that goes first alternates per pair (no warm/cold ordering bias), and
  // each arm keeps its best-of across all pairs to shed outliers.
  std::vector<Session::AccessRequest> ab_requests;
  ab_requests.reserve(requests.size() * cfg.overhead_tile);
  for (std::size_t rep = 0; rep < cfg.overhead_tile; ++rep) {
    ab_requests.insert(ab_requests.end(), requests.begin(), requests.end());
  }
  auto& global = sp::obs::MetricsRegistry::global();
  run_load(session, ab_requests, 8, 0.0);  // warm both arms' code + data
  double on_ms = 1e300;
  double off_ms = 1e300;
  for (int rep = 0; rep < cfg.overhead_reps; ++rep) {
    const bool on_first = (rep % 2 == 0);
    for (const bool arm_on : {on_first, !on_first}) {
      global.set_enabled(arm_on);
      double& best = arm_on ? on_ms : off_ms;
      best = std::min(best, run_load(session, ab_requests, 8, 0.0).wall_ms);
    }
  }
  global.set_enabled(true);
  const double overhead_pct = 100.0 * (on_ms - off_ms) / off_ms;
  std::printf("# instrumentation overhead @8 threads (wire off, %zu reqs): on %.1f ms, off %.1f ms, %.2f%%\n",
              ab_requests.size(), on_ms, off_ms, overhead_pct);

  // -- PR 9: tracing overhead A/B ----------------------------------------
  // Same discipline as the metrics A/B: the tiled stream, 8 threads, wire
  // waits off, alternated arm order, best-of per arm. The traced arm runs
  // the production posture — 1% head sampling — so 99% of requests pay only
  // the sampling draw and the 1% that record pay the full span tree. The
  // tracer is drained between runs so ring churn from one arm cannot bleed
  // into the next.
  auto& tracer = sp::obs::Tracer::global();
  {
    sp::obs::TracerConfig trace_cfg;
    trace_cfg.sample_probability = 0.01;
    trace_cfg.ring_slots = 1024;
    tracer.configure(trace_cfg);
  }
  // Methodology differs from the metrics A/B in two ways, both because the
  // expected delta here is ~0 and would drown in measurement noise:
  //  * one worker thread and process-CPU-time arms, not eight threads on
  //    wall time — the tracer's per-request cost is thread-count
  //    independent CPU work, and on a shared runner wall time carries
  //    steal/frequency noise (observed per-pair swings of +-18%) an order
  //    of magnitude larger than the effect;
  //  * a paired statistic instead of best-of — each pair runs its two arms
  //    back-to-back (ambient drift cancels within the pair, order
  //    alternates across pairs) and the reported overhead is the MEDIAN of
  //    the per-pair relative deltas.
  const int trace_reps = cfg.overhead_reps * 2;
  double trace_on_ms = 1e300;
  double trace_off_ms = 1e300;
  std::vector<double> trace_deltas_pct;
  for (int rep = 0; rep < trace_reps; ++rep) {
    const bool on_first = (rep % 2 == 0);
    double pair_ms[2];  // [0] = off arm, [1] = on arm
    for (const bool arm_on : {on_first, !on_first}) {
      tracer.set_enabled(arm_on);
      const double cpu_before = process_cpu_ms();
      run_load(session, ab_requests, 1, 0.0);
      pair_ms[arm_on ? 1 : 0] = process_cpu_ms() - cpu_before;
      tracer.set_enabled(false);
      (void)tracer.drain();
    }
    trace_on_ms = std::min(trace_on_ms, pair_ms[1]);
    trace_off_ms = std::min(trace_off_ms, pair_ms[0]);
    trace_deltas_pct.push_back(100.0 * (pair_ms[1] - pair_ms[0]) / pair_ms[0]);
  }
  tracer.configure(sp::obs::TracerConfig{});
  std::sort(trace_deltas_pct.begin(), trace_deltas_pct.end());
  const double trace_overhead_pct =
      trace_deltas_pct.size() % 2 == 1
          ? trace_deltas_pct[trace_deltas_pct.size() / 2]
          : 0.5 * (trace_deltas_pct[trace_deltas_pct.size() / 2 - 1] +
                   trace_deltas_pct[trace_deltas_pct.size() / 2]);
  std::printf(
      "# tracing overhead @1 thread (wire off, %zu reqs, 1%% sampling): best on-cpu %.1f ms, "
      "best off-cpu %.1f ms, paired-median %.2f%% (bar 2%%)\n",
      ab_requests.size(), trace_on_ms, trace_off_ms, trace_overhead_pct);

  // -- PR 8: WAL durability A/B ------------------------------------------
  // Fresh sessions so neither arm inherits the scaling runs' warm state
  // asymmetrically; each arm gets one unrecorded warm run over its own
  // stream. The WAL arm keeps PersistenceConfig's default fsync=batch — the
  // honest arm, every write acknowledged only after its group commit.
  namespace fs = std::filesystem;
  const fs::path wal_dir =
      fs::temp_directory_path() / ("sp-bench-walab-" + std::to_string(::getpid()));
  const std::size_t mixed_n = cfg.requests * 2;
  MixedRwStats mem_rw, wal_rw;
  {
    SessionConfig mem_cfg = session_cfg;
    mem_cfg.seed = "bench-pr8-mem";
    Session mem_session(mem_cfg);
    const Catalog mem_cat = build_catalog(mem_session, ctx, object);
    const auto stream = make_request_stream(mem_cat, ctx, mixed_n, nullptr);
    run_mixed_rw(mem_session, stream, 8, cfg.wire_scale);  // warm
    mem_rw = run_mixed_rw(mem_session, stream, 8, cfg.wire_scale);
  }
  {
    SessionConfig wal_cfg = session_cfg;
    wal_cfg.seed = "bench-pr8-wal";
    sp::core::PersistenceConfig persist;
    persist.dir = wal_dir.string();
    wal_cfg.persistence = persist;
    Session wal_session(wal_cfg);
    const Catalog wal_cat = build_catalog(wal_session, ctx, object);
    const auto stream = make_request_stream(wal_cat, ctx, mixed_n, nullptr);
    run_mixed_rw(wal_session, stream, 8, cfg.wire_scale);  // warm
    wal_rw = run_mixed_rw(wal_session, stream, 8, cfg.wire_scale);
  }
  std::error_code wal_ec;
  fs::remove_all(wal_dir, wal_ec);
  const double wal_p50_ratio = wal_rw.all.p50_ms / mem_rw.all.p50_ms;
  std::printf(
      "# WAL durability A/B @8 threads (1/4 writes, fsync=batch): mem p50 %.2f ms, "
      "wal p50 %.2f ms, ratio %.3f (bar 1.25)\n",
      mem_rw.all.p50_ms, wal_rw.all.p50_ms, wal_p50_ratio);
  std::printf("#   write p50: mem %.3f ms, wal %.3f ms\n", mem_rw.write.p50_ms,
              wal_rw.write.p50_ms);

  if (global.series_count() == 0) {
    std::fprintf(stderr, "global metrics snapshot is empty — instrumentation did not record\n");
    return 1;
  }

  std::FILE* out = std::fopen(cfg.out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_concurrent_access\",\n");
  std::fprintf(out, "  \"preset\": \"%s\",\n", cfg.preset_name);
  std::fprintf(out, "  \"requests_per_run\": %zu,\n", cfg.requests);
  std::fprintf(out, "  \"traffic_mix\": \"7/8 C1, 1/8 C2\",\n");
  std::fprintf(out, "  \"wire_scale\": %.2f,\n", cfg.wire_scale);
  std::fprintf(out,
               "  \"latency_model\": \"measured processing wall time + simnet network delay "
               "accounted on seeded per-worker virtual wire clocks (no wall-clock sleeps; "
               "throughput = requests / virtual makespan)\",\n");
  std::fprintf(out, "  \"percentile_source\": \"obs::Histogram bucket interpolation\",\n");
  auto scheme_json = [](const sp::bench::LatencySummary& s) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"mean_ms\": %.1f, \"p50_ms\": %.1f, \"p95_ms\": %.1f}",
                  static_cast<unsigned long long>(s.count), s.mean_ms, s.p50_ms, s.p95_ms);
    return std::string(buf);
  };
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const RunStats& s = series[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"wall_ms\": %.1f, \"virtual_makespan_ms\": %.1f, "
                 "\"throughput_rps\": %.2f, "
                 "\"p50_ms\": %.1f, \"p95_ms\": %.1f, \"p99_ms\": %.1f, \"max_ms\": %.1f,\n"
                 "     \"c1_total\": %s, \"c1_proc\": %s,\n"
                 "     \"c2_total\": %s, \"c2_proc\": %s}%s\n",
                 s.threads, s.wall_ms, s.virtual_makespan_ms, s.throughput_rps,
                 s.latency.p50_ms, s.latency.p95_ms,
                 s.latency.p99_ms, s.latency.max_ms, scheme_json(s.c1_total).c_str(),
                 scheme_json(s.c1_proc).c_str(), scheme_json(s.c2_total).c_str(),
                 scheme_json(s.c2_proc).c_str(), i + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"c2_runs\": [\n");
  for (std::size_t i = 0; i < c2_series.size(); ++i) {
    const RunStats& s = c2_series[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"virtual_makespan_ms\": %.1f, "
                 "\"throughput_rps\": %.2f,\n"
                 "     \"total\": %s, \"proc\": %s}%s\n",
                 s.threads, s.virtual_makespan_ms, s.throughput_rps,
                 scheme_json(s.c2_total).c_str(),
                 scheme_json(s.c2_proc).c_str(), i + 1 < c2_series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"verify_throughput\": [\n");
  for (std::size_t i = 0; i < vt_series.size(); ++i) {
    const VerifyThroughput& vt = vt_series[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"batches\": %zu, \"wall_ms\": %.1f, "
                 "\"batches_per_sec\": %.1f, \"per_core_per_sec\": %.1f}%s\n",
                 vt.threads, vt.batches, vt.wall_ms, vt.batches_per_sec, vt.per_core_rps,
                 i + 1 < vt_series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_8_vs_1\": %.2f,\n", speedup);
  std::fprintf(out, "  \"instrumentation_overhead\": {\n");
  std::fprintf(out, "    \"threads\": 8,\n    \"wire_scale\": 0.0,\n");
  std::fprintf(out, "    \"requests\": %zu,\n", ab_requests.size());
  std::fprintf(out, "    \"ab_pairs\": %d,\n", cfg.overhead_reps);
  std::fprintf(out, "    \"metrics_on_wall_ms\": %.2f,\n", on_ms);
  std::fprintf(out, "    \"metrics_off_wall_ms\": %.2f,\n", off_ms);
  std::fprintf(out, "    \"overhead_pct\": %.2f\n  },\n", overhead_pct);
  std::fprintf(out, "  \"tracing_overhead\": {\n");
  std::fprintf(out, "    \"threads\": 1,\n    \"wire_scale\": 0.0,\n");
  std::fprintf(out, "    \"requests\": %zu,\n", ab_requests.size());
  std::fprintf(out, "    \"ab_pairs\": %d,\n", trace_reps);
  std::fprintf(out, "    \"sample_probability\": 0.01,\n");
  std::fprintf(out, "    \"trace_on_best_wall_ms\": %.2f,\n", trace_on_ms);
  std::fprintf(out, "    \"trace_off_best_wall_ms\": %.2f,\n", trace_off_ms);
  std::fprintf(out, "    \"overhead_pct_paired_median\": %.2f,\n", trace_overhead_pct);
  std::fprintf(out, "    \"per_pair_deltas_pct\": [");
  for (std::size_t i = 0; i < trace_deltas_pct.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", trace_deltas_pct[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out,
               "    \"acceptance\": \"<= 2%% at 1%% sampling; disabled arm is the baseline "
               "(fast path = one relaxed load)\"\n  },\n");
  auto rw_json = [&scheme_json](const MixedRwStats& s) {
    return "{\"wall_ms\": " + std::to_string(s.wall_ms) +
           ", \"virtual_makespan_ms\": " + std::to_string(s.virtual_makespan_ms) +
           ", \"ops_per_sec\": " + std::to_string(s.ops_per_sec) +
           ", \"all\": " + scheme_json(s.all) + ", \"read\": " + scheme_json(s.read) +
           ", \"write\": " + scheme_json(s.write) + "}";
  };
  std::fprintf(out, "  \"wal_ab\": {\n");
  std::fprintf(out, "    \"threads\": 8,\n    \"operations\": %zu,\n", mem_rw.ops);
  std::fprintf(out, "    \"write_fraction\": 0.25,\n    \"fsync\": \"batch\",\n");
  std::fprintf(out, "    \"memory\": %s,\n", rw_json(mem_rw).c_str());
  std::fprintf(out, "    \"wal\": %s,\n", rw_json(wal_rw).c_str());
  std::fprintf(out, "    \"p50_ratio\": %.3f,\n", wal_p50_ratio);
  std::fprintf(out, "    \"acceptance\": \"wal p50 <= 1.25x in-memory p50\"\n  },\n");
  std::fprintf(out, "  \"metrics\": %s\n}\n", global.to_json().c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", cfg.out_path.c_str());
  return 0;
}
