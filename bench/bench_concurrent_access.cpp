// Concurrent serving-core load generator (PR 3).
//
// Models the paper's deployment front-end under receiver load: a fixed
// catalog of posts (mixed Construction 1 / Construction 2), a stream of
// access requests fanned over 1/2/4/8 worker threads, and per-request
// latency = measured processing wall time + the simnet-modeled network
// delay, which each worker REALIZES as wall-clock wait (sleep). That is the
// serving reality this harness exists to measure: receiver requests are
// network-dominated, so a thread-safe core overlaps many in-flight requests'
// wire waits even when their crypto serializes on few cores.
//
// Reports aggregate throughput and p50/p95/p99 latency per thread count and
// writes the whole series to BENCH_PR3.json.
//
// Usage: bench_concurrent_access [--quick] [--out PATH]
//   --quick  test preset, fewer requests, compressed wire waits (CI smoke)
//   --out    JSON output path (default BENCH_PR3.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"

namespace {

using sp::core::AccessResult;
using sp::core::Context;
using sp::core::Knowledge;
using sp::core::Session;
using sp::core::SessionConfig;
using sp::crypto::to_bytes;

struct BenchConfig {
  sp::ec::ParamPreset preset = sp::ec::ParamPreset::kFull;  // the 512-bit preset
  const char* preset_name = "full-512bit";
  std::size_t requests = 48;
  double wire_scale = 1.0;  // fraction of modeled network delay realized as wall wait
  std::string out_path = "BENCH_PR3.json";
};

struct RunStats {
  std::size_t threads = 0;
  std::size_t requests = 0;
  std::size_t granted = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One load run: `threads` workers drain the shared request stream.
RunStats run_load(const Session& session, const std::vector<Session::AccessRequest>& requests,
                  std::size_t threads, double wire_scale) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> granted{0};
  std::vector<std::vector<double>> latencies(threads);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        const auto& req = requests[i];
        const auto start = std::chrono::steady_clock::now();
        const AccessResult result = session.access(req.receiver, req.post_id, req.knowledge,
                                                   req.device);
        const double proc_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                .count();
        // Realize the modeled wire time: this worker is "on the socket" for
        // that long, exactly what lets other threads' requests make progress.
        const double wire_ms = result.cost.network_ms() * wire_scale;
        if (wire_ms > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wire_ms));
        }
        latencies[t].push_back(proc_ms + wire_ms);
        if (result.success()) granted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();

  std::vector<double> all;
  for (const auto& per_thread : latencies) all.insert(all.end(), per_thread.begin(), per_thread.end());
  std::sort(all.begin(), all.end());

  RunStats stats;
  stats.threads = threads;
  stats.requests = requests.size();
  stats.granted = granted.load();
  stats.wall_ms = wall_ms;
  stats.throughput_rps = 1000.0 * static_cast<double>(requests.size()) / wall_ms;
  stats.p50_ms = percentile(all, 0.50);
  stats.p95_ms = percentile(all, 0.95);
  stats.p99_ms = percentile(all, 0.99);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.preset = sp::ec::ParamPreset::kTest;
      cfg.preset_name = "test-256bit";
      cfg.requests = 16;
      cfg.wire_scale = 0.25;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  SessionConfig session_cfg;
  session_cfg.pairing_preset = cfg.preset;
  session_cfg.seed = "bench-pr3";
  Session session(session_cfg);

  // Catalog: one sharer, 8 receiver friends, 6 C1 posts + 2 C2 posts.
  const auto sharer = session.register_user("sharer");
  std::vector<sp::osn::UserId> receivers;
  for (int i = 0; i < 8; ++i) {
    receivers.push_back(session.register_user("receiver-" + std::to_string(i)));
    session.befriend(sharer, receivers.back());
  }
  const Context ctx({{"Where did we meet?", "Paris"},
                     {"What did we eat?", "pizza"},
                     {"Who hosted?", "Alice"},
                     {"Which month?", "June"},
                     {"Which city hosted the afterparty?", "Lyon"}});
  const auto object = to_bytes("the shared event photo, say 100 bytes of payload padding......");
  std::vector<std::string> c1_posts, c2_posts;
  for (int i = 0; i < 6; ++i) {
    c1_posts.push_back(
        session.share_c1(sharer, object, ctx, 2, 4, sp::net::pc_profile()).post_id);
  }
  for (int i = 0; i < 2; ++i) {
    c2_posts.push_back(session.share_c2(sharer, object, ctx, 2, sp::net::pc_profile()).post_id);
  }

  // Request stream: 7/8 C1, 1/8 C2 — the paper's I1 is the common path, I2
  // the heavy tail. Fully deterministic given the index.
  std::vector<Session::AccessRequest> requests(cfg.requests);
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    requests[i].receiver = receivers[i % receivers.size()];
    requests[i].post_id = (i % 8 == 7) ? c2_posts[i % c2_posts.size()]
                                       : c1_posts[i % c1_posts.size()];
    requests[i].knowledge = Knowledge::full(ctx);
    requests[i].device = sp::net::pc_profile();
  }

  // Warmup + API validation: one access_parallel batch must grant everything
  // (it also pre-faults the fixed-base tables so run 1 isn't penalized).
  const auto warmup = session.access_parallel(requests, 4);
  std::size_t warm_ok = 0;
  for (const auto& r : warmup) warm_ok += r.success() ? 1 : 0;
  if (warm_ok != warmup.size()) {
    std::fprintf(stderr, "warmup: only %zu/%zu requests succeeded\n", warm_ok, warmup.size());
    return 1;
  }

  std::printf("# Concurrent access load: %zu requests (7:1 C1:C2), preset %s, wire x%.2f\n",
              cfg.requests, cfg.preset_name, cfg.wire_scale);
  std::printf("# %7s %9s %12s %9s %9s %9s\n", "threads", "wall_ms", "thruput_rps", "p50_ms",
              "p95_ms", "p99_ms");
  std::vector<RunStats> series;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const RunStats s = run_load(session, requests, threads, cfg.wire_scale);
    if (s.granted != s.requests) {
      std::fprintf(stderr, "run %zu threads: only %zu/%zu granted\n", threads, s.granted,
                   s.requests);
      return 1;
    }
    std::printf("  %7zu %9.1f %12.2f %9.1f %9.1f %9.1f\n", s.threads, s.wall_ms,
                s.throughput_rps, s.p50_ms, s.p95_ms, s.p99_ms);
    series.push_back(s);
  }
  const double speedup = series.back().throughput_rps / series.front().throughput_rps;
  std::printf("# aggregate throughput speedup, 8 threads vs 1: %.2fx\n", speedup);

  std::FILE* out = std::fopen(cfg.out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_concurrent_access\",\n");
  std::fprintf(out, "  \"preset\": \"%s\",\n", cfg.preset_name);
  std::fprintf(out, "  \"requests_per_run\": %zu,\n", cfg.requests);
  std::fprintf(out, "  \"traffic_mix\": \"7/8 C1, 1/8 C2\",\n");
  std::fprintf(out, "  \"wire_scale\": %.2f,\n", cfg.wire_scale);
  std::fprintf(out,
               "  \"latency_model\": \"measured processing wall time + simnet network delay "
               "realized as wall-clock wait\",\n");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const RunStats& s = series[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"wall_ms\": %.1f, \"throughput_rps\": %.2f, "
                 "\"p50_ms\": %.1f, \"p95_ms\": %.1f, \"p99_ms\": %.1f}%s\n",
                 s.threads, s.wall_ms, s.throughput_rps, s.p50_ms, s.p95_ms, s.p99_ms,
                 i + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_8_vs_1\": %.2f\n}\n", speedup);
  std::fclose(out);
  std::printf("# wrote %s\n", cfg.out_path.c_str());
  return 0;
}
