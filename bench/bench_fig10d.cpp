// Figure 10(d): Receiver's overhead for Implementation 1, PC vs Tablet.
// Paper findings to reproduce in shape: PC faster than tablet; overheads
// insignificantly low on both.
#include "fig10_common.hpp"

int main() {
  using namespace sp::bench;
  constexpr int kTrials = 5;
  constexpr std::size_t kThreshold = 1;

  std::printf("# Fig 10(d): Receiver overhead for I1, PC vs Tablet\n");
  std::printf("# workload: 100-char message, 20-char answers, 50-char questions, k=1\n");
  std::printf("# columns: N  PC_local_ms PC_net_ms PC_total_ms  Tab_local_ms Tab_net_ms "
              "Tab_total_ms\n");
  for (std::size_t n = 2; n <= 10; ++n) {
    const AvgCell pc = run_avg(Scheme::kC1, n, kThreshold, net::pc_profile(),
                            "fig10d-pc-n" + std::to_string(n), kTrials);
    const AvgCell tab = run_avg(Scheme::kC1, n, kThreshold, net::tablet_profile(),
                             "fig10d-tab-n" + std::to_string(n), kTrials);
    std::printf("%2zu  %10.2f %9.2f %11.2f  %12.2f %10.2f %12.2f\n", n, pc.mean.receiver.local_ms,
                pc.mean.receiver.network_ms, pc.mean.receiver.total_ms(), tab.mean.receiver.local_ms,
                tab.mean.receiver.network_ms, tab.mean.receiver.total_ms());
  }
  std::printf("# expected shape: tablet local > PC local; both totals small\n");
  return 0;
}
