// Figure 10(a): Sharer's overhead, Implementation 1 vs Implementation 2 on
// PC. Paper findings to reproduce in shape:
//   * I2 network delay is the worst component by far (four-file upload);
//   * I2 local processing slightly higher than I1 and grows with N;
//   * I1 combined delay extremely low and near-flat in N.
#include "fig10_common.hpp"

int main() {
  using namespace sp::bench;
  constexpr int kTrials = 3;
  constexpr std::size_t kThreshold = 1;  // paper: k = 1

  std::printf("# Fig 10(a): Sharer overhead, I1 vs I2 on PC\n");
  std::printf("# workload: 100-char message, 20-char answers, 50-char questions, k=1\n");
  std::printf("# columns: N  I1_local_ms I1_net_ms I1_total_ms  I2_local_ms I2_net_ms "
              "I2_total_ms  I1_KB I2_KB  I1_sd I2_sd\n");
  for (std::size_t n = 2; n <= 10; ++n) {
    const AvgCell c1 = run_avg(Scheme::kC1, n, kThreshold, net::pc_profile(),
                            "fig10a-c1-n" + std::to_string(n), kTrials);
    const AvgCell c2 = run_avg(Scheme::kC2, n, kThreshold, net::pc_profile(),
                            "fig10a-c2-n" + std::to_string(n), kTrials);
    std::printf("%2zu  %10.2f %9.2f %11.2f  %11.2f %9.2f %11.2f  %6.2f %6.2f  %5.1f %5.1f\n",
                n, c1.mean.sharer.local_ms, c1.mean.sharer.network_ms,
                c1.mean.sharer.total_ms(), c2.mean.sharer.local_ms, c2.mean.sharer.network_ms,
                c2.mean.sharer.total_ms(), c1.mean.sharer.bytes / 1024.0,
                c2.mean.sharer.bytes / 1024.0, c1.sharer_total_sd, c2.sharer_total_sd);
  }
  std::printf("# expected shape: I2 total >> I1 total; I2 dominated by network; "
              "I2 local grows with N\n");
  return 0;
}
