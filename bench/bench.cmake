# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains ONLY benchmark executables — `for b in build/bench/*`
# then runs the whole harness with no CMake artifacts in the way.
set(SP_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

function(sp_add_bench name)
  add_executable(${name} ${SP_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE sp_core)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src ${SP_BENCH_DIR})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(sp_add_gbench name)
  sp_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

# Figure-reproduction harnesses (plain executables printing paper series).
sp_add_bench(bench_fig10a)
sp_add_bench(bench_fig10b)
sp_add_bench(bench_fig10c)
sp_add_bench(bench_fig10d)
sp_add_bench(bench_ablation_threshold)
sp_add_bench(bench_payload)
sp_add_bench(bench_baseline_success)
sp_add_bench(bench_acl_maintenance)
sp_add_bench(bench_params)
sp_add_bench(bench_concurrent_access)
sp_add_bench(bench_fault_sweep)
sp_add_bench(bench_storage)
sp_add_bench(bench_capacity)
target_link_libraries(bench_capacity PRIVATE sp_workload)

# Micro-benchmarks (google-benchmark).
sp_add_gbench(bench_micro_crypto)
sp_add_gbench(bench_sss)
sp_add_gbench(bench_abe)
