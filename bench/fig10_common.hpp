// Shared harness for the Figure 10 reproduction binaries.
//
// Paper experimental setup (§VIII): message length 100 characters, answers
// 20 characters, questions 50 characters, threshold k = 1, N (number of
// context pairs) varying; CP-ABE needs >= 2 leaves so observations start at
// N = 2. Delay is decomposed into local processing and network (including
// server-side handling). PC vs Nexus-7-tablet panels differ only in the
// device profile's CPU scaling.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"

namespace sp::bench {

namespace net = sp::net;  // lets bench mains say net::pc_profile()

using core::Context;
using core::Knowledge;
using core::Session;
using core::SessionConfig;

/// Paper workload: N pairs, 50-char questions, 20-char answers.
inline Context paper_context(std::size_t n, crypto::Drbg& rng) {
  Context ctx;
  for (std::size_t i = 0; i < n; ++i) {
    std::string q = "q" + std::to_string(i) + ":";
    while (q.size() < 50) q.push_back(static_cast<char>('a' + rng.uniform(26)));
    std::string a;
    while (a.size() < 20) a.push_back(static_cast<char>('a' + rng.uniform(26)));
    ctx.add(q, a);
  }
  return ctx;
}

/// Paper workload: 100-character message.
inline crypto::Bytes paper_message(crypto::Drbg& rng) {
  crypto::Bytes msg(100);
  for (auto& b : msg) b = static_cast<std::uint8_t>('A' + rng.uniform(26));
  return msg;
}

/// Percentile summary of a latency histogram: what the load benches report
/// instead of sorting raw sample vectors. Percentiles are the histogram's
/// bucket-interpolated estimates, so a bench and a production scrape of the
/// same instrument agree by construction.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

inline LatencySummary summarize(const obs::Histogram& hist) {
  LatencySummary s;
  s.count = hist.count();
  if (s.count > 0) s.mean_ms = hist.sum_ms() / static_cast<double>(s.count);
  s.p50_ms = hist.percentile(0.50);
  s.p95_ms = hist.percentile(0.95);
  s.p99_ms = hist.percentile(0.99);
  s.max_ms = hist.max_ms();
  return s;
}

/// Seeded-virtual-time wire accounting for the load benches.
///
/// The modeled network delay is deterministic per seed, but the PR 3-5
/// harnesses REALIZED it as std::this_thread::sleep_for — so every
/// throughput number inherited scheduler jitter and CI oversleep (a 5 ms
/// modeled wait routinely sleeps 5.5+ ms on a loaded runner). Instead each
/// worker now advances a private virtual clock by its measured processing
/// time plus the modeled wire wait it WOULD have slept; the run's makespan
/// is the slowest worker's clock — the wall time a perfectly-scheduled
/// sleep run would have shown. The (dominant) wire component is exactly the
/// seeded model's number, so only real processing-time measurement remains
/// as run-to-run variance. Per-request latency keeps its definition
/// (processing + wire), so every histogram-based acceptance bar is
/// unchanged.
///
/// Each worker touches only its own slot, so no synchronization is needed.
class VirtualWireClocks {
 public:
  explicit VirtualWireClocks(std::size_t workers) : ms_(workers, 0.0) {}

  /// Worker `w` finished a request that cost `ms` (processing + wire).
  void advance(std::size_t w, double ms) { ms_[w] += ms; }

  /// The slowest worker's clock == the virtual wall time of the run.
  [[nodiscard]] double makespan_ms() const {
    double m = 0;
    for (const double v : ms_) m = std::max(m, v);
    return std::max(m, 1e-9);
  }

 private:
  std::vector<double> ms_;
};

struct Sample {
  double local_ms = 0;
  double network_ms = 0;
  std::size_t bytes = 0;

  [[nodiscard]] double total_ms() const { return local_ms + network_ms; }
};

/// Averages `trials` runs of one (construction, role, device) cell.
struct Cell {
  Sample sharer;
  Sample receiver;
};

enum class Scheme { kC1, kC2 };

/// One full share+access run; returns the sharer and receiver ledgers.
inline Cell run_once(Scheme scheme, std::size_t n, std::size_t k,
                     const net::DeviceProfile& device, const std::string& seed) {
  SessionConfig cfg;
  cfg.pairing_preset = ec::ParamPreset::kFull;  // the paper's 512-bit scale
  cfg.seed = seed;
  Session session(cfg);
  const auto sharer = session.register_user("sharer");
  const auto receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  crypto::Drbg wl(seed + "-workload");
  const Context ctx = paper_context(n, wl);
  const crypto::Bytes msg = paper_message(wl);

  const auto receipt = scheme == Scheme::kC1
                           ? session.share_c1(sharer, msg, ctx, k, n, device)
                           : session.share_c2(sharer, msg, ctx, k, device);
  const auto result = session.access(receiver, receipt.post_id, Knowledge::full(ctx), device);
  if (!result.success()) {
    std::fprintf(stderr, "fig10 harness: access unexpectedly failed (n=%zu)\n", n);
  }
  Cell cell;
  cell.sharer = {receipt.cost.local_ms(), receipt.cost.network_ms(),
                 receipt.cost.bytes_transferred()};
  cell.receiver = {result.cost.local_ms(), result.cost.network_ms(),
                   result.cost.bytes_transferred()};
  return cell;
}

/// Averaged cell over `trials` independent seeds, plus total-delay stddev —
/// the paper remarks on measurement "instability ... due to the
/// unpredictability of the communication network speed", so we report it.
struct AvgCell {
  Cell mean;
  double sharer_total_sd = 0;
  double receiver_total_sd = 0;
};

inline AvgCell run_avg(Scheme scheme, std::size_t n, std::size_t k,
                       const net::DeviceProfile& device, const std::string& tag, int trials) {
  AvgCell out;
  std::vector<double> sharer_totals, receiver_totals;
  for (int t = 0; t < trials; ++t) {
    const Cell c = run_once(scheme, n, k, device, tag + "-t" + std::to_string(t));
    out.mean.sharer.local_ms += c.sharer.local_ms / trials;
    out.mean.sharer.network_ms += c.sharer.network_ms / trials;
    out.mean.sharer.bytes += c.sharer.bytes / static_cast<std::size_t>(trials);
    out.mean.receiver.local_ms += c.receiver.local_ms / trials;
    out.mean.receiver.network_ms += c.receiver.network_ms / trials;
    out.mean.receiver.bytes += c.receiver.bytes / static_cast<std::size_t>(trials);
    sharer_totals.push_back(c.sharer.total_ms());
    receiver_totals.push_back(c.receiver.total_ms());
  }
  auto stddev = [](const std::vector<double>& xs) {
    if (xs.size() < 2) return 0.0;
    double mean = 0;
    for (double x : xs) mean += x / static_cast<double>(xs.size());
    double var = 0;
    for (double x : xs) var += (x - mean) * (x - mean) / static_cast<double>(xs.size() - 1);
    return std::sqrt(var);
  };
  out.sharer_total_sd = stddev(sharer_totals);
  out.receiver_total_sd = stddev(receiver_totals);
  return out;
}

}  // namespace sp::bench
