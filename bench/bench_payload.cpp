// Payload-size sweep (beyond the paper's fixed 100-char message): shows the
// crossover structure — puzzle overhead is constant, so for large objects
// both constructions converge to raw transfer+AES cost and the C1/C2 gap
// becomes a fixed additive term.
#include "fig10_common.hpp"

namespace {

using namespace sp::bench;

Cell run_with_payload(Scheme scheme, std::size_t payload_bytes, const std::string& seed) {
  SessionConfig cfg;
  cfg.pairing_preset = sp::ec::ParamPreset::kFull;
  cfg.seed = seed;
  Session session(cfg);
  const auto sharer = session.register_user("sharer");
  const auto receiver = session.register_user("receiver");
  session.befriend(sharer, receiver);

  sp::crypto::Drbg wl(seed + "-payload");
  const Context ctx = paper_context(4, wl);
  const auto object = wl.bytes(payload_bytes);

  const auto receipt = scheme == Scheme::kC1
                           ? session.share_c1(sharer, object, ctx, 1, 4, sp::net::pc_profile())
                           : session.share_c2(sharer, object, ctx, 1, sp::net::pc_profile());
  const auto result =
      session.access(receiver, receipt.post_id, Knowledge::full(ctx), sp::net::pc_profile());
  Cell cell;
  cell.sharer = {receipt.cost.local_ms(), receipt.cost.network_ms(),
                 receipt.cost.bytes_transferred()};
  cell.receiver = {result.cost.local_ms(), result.cost.network_ms(),
                   result.cost.bytes_transferred()};
  return cell;
}

}  // namespace

int main() {
  std::printf("# Payload sweep: object size vs total (sharer+receiver) delay, N=4, k=1\n");
  std::printf("# columns: payload_KB  C1_total_ms C1_KB_moved  C2_total_ms C2_KB_moved\n");
  for (const std::size_t kb : {1, 10, 100, 1000}) {
    const auto c1 = run_with_payload(Scheme::kC1, kb * 1024, "payload-c1-" + std::to_string(kb));
    const auto c2 = run_with_payload(Scheme::kC2, kb * 1024, "payload-c2-" + std::to_string(kb));
    std::printf("%10zu  %11.2f %11.2f  %11.2f %11.2f\n", kb,
                c1.sharer.total_ms() + c1.receiver.total_ms(),
                (c1.sharer.bytes + c1.receiver.bytes) / 1024.0,
                c2.sharer.total_ms() + c2.receiver.total_ms(),
                (c2.sharer.bytes + c2.receiver.bytes) / 1024.0);
  }
  std::printf("# expected shape: gap between C1 and C2 is ~constant; transfer dominates "
              "at megabyte payloads\n");
  return 0;
}
