// Capacity-curve bench (ROADMAP item 4) — the PR 10 headline.
//
// For each user-count point (10k / 100k / 1M, lazily generated — no
// O(users) RAM), drives a Zipf-skewed access stream with refresh/revocation
// churn (paper §V dynamic context) through a real Session twice: cache-off
// (the PR 9 serving path) and cache-on (the PR 10 sharded serving cache).
// Execution is hybrid:
//   * the Zipf head (the hottest `materialized` ranks) is REAL — real
//     share/access/refresh/revoke against the session, real cache fills,
//     hits, epoch bumps and negative markers, with each request's measured
//     CostLedger giving its (cpu, overlap) decomposition;
//   * the Zipf tail rides the same ServeCache implementation (its own
//     instance keyed by rank) for hit/miss decisions, with costs drawn from
//     the measured per-class cold/warm sample pools — so tail behavior is
//     the real admission/LRU policy, just not the real crypto every time.
// The per-event cost series then replays through the virtual-time open-loop
// M/G/c driver (workload/driver.hpp) at a rate ladder: capacity = the
// largest offered RPS whose p99 stays inside the SLO. Virtual time is what
// makes the curve reproducible on a loaded CI runner (no wall sleeps).
//
// Reported per point: capacity RPS for both arms, the A/B speedup, the
// measured cache hit rate, and the p99 at capacity. Acceptance bars
// (checked in full mode, reported in both): speedup >= 1.5x at the largest
// point, hit rate > 0, SLO met at the base probe.
//
// Usage: bench_capacity [--quick] [--out PATH] [--slo-ms X]
//   --quick   fewer events per point (CI smoke; same three user counts)
//   --out     JSON output path (default BENCH_PR10.json)
//   --slo-ms  p99 SLO; 0 (default) = auto: 1.5x the cache-off no-queue p99
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/serve_cache.hpp"
#include "core/session.hpp"
#include "fig10_common.hpp"
#include "obs/metrics.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

namespace {

using sp::core::CacheConfig;
using sp::core::Context;
using sp::core::Knowledge;
using sp::core::ServeCache;
using sp::core::Session;
using sp::core::SessionConfig;
using sp::crypto::Bytes;
using sp::workload::Event;
using sp::workload::TraceGenerator;
using sp::workload::WorkloadConfig;

constexpr std::size_t kServers = 8;       // virtual serving cores
constexpr std::size_t kReceivers = 4;     // proxy receivers driving requests
constexpr std::size_t kCalibration = 4;   // cold/warm samples per class

struct BenchConfig {
  std::size_t events = 500;        // trace length per (point, arm)
  std::size_t materialized = 12;   // real posts covering the Zipf head
  double slo_ms = 0;               // 0 = auto from the cache-off arm
  bool quick = false;
  std::string out_path = "BENCH_PR10.json";
};

/// Measured (cpu, overlap) decomposition of one request. cpu occupies a
/// virtual server; overlap (modeled network + waits) only stretches latency.
struct Cost {
  double cpu = 0;
  double overlap = 0;
};

Cost cost_of(const sp::net::CostLedger& ledger) {
  return {ledger.local_ms(), ledger.network_ms() + ledger.wait_ms()};
}

/// Per-class measured sample pools the tail draws from.
struct SamplePool {
  std::vector<Cost> c1_miss, c1_hit, c2_miss, c2_hit;

  [[nodiscard]] const Cost& draw(const std::vector<Cost>& pool, sp::crypto::Drbg& rng) const {
    return pool[rng.uniform(static_cast<std::uint32_t>(pool.size()))];
  }
};

/// One (point, arm) universe: a real session holding the materialized Zipf
/// head, plus a tail ServeCache reusing the production admission/LRU policy
/// for ranks beyond the head.
struct Arm {
  Arm(bool cached, std::uint64_t users)
      : cached_on(cached) {
    SessionConfig cfg;
    cfg.pairing_preset = sp::ec::ParamPreset::kTest;
    cfg.seed = "bench-pr10-u" + std::to_string(users);
    if (cached) cfg.cache = CacheConfig{};
    session = std::make_unique<Session>(cfg);
    sharer = session->register_user("sharer");
    for (std::size_t i = 0; i < kReceivers; ++i) {
      receivers.push_back(session->register_user("receiver-" + std::to_string(i)));
      session->befriend(sharer, receivers.back());
    }
    sp::crypto::Drbg wl(cfg.seed + "-objects");
    ctx = sp::bench::paper_context(4, wl);
    object = sp::bench::paper_message(wl);
    if (cached) tail_cache = std::make_unique<ServeCache>(CacheConfig{});
  }

  /// Materialize the hottest `count` ranks as real posts (scheme per rank).
  void materialize(const TraceGenerator& gen, std::size_t count) {
    for (std::uint64_t rank = 0; rank < count; ++rank) {
      const auto receipt =
          gen.post_is_c2(rank)
              ? session->share_c2(sharer, object, ctx, 2, sp::net::pc_profile())
              : session->share_c1(sharer, object, ctx, 2, 4, sp::net::pc_profile());
      posts.push_back(receipt.post_id);
    }
  }

  bool cached_on;
  std::unique_ptr<Session> session;
  sp::osn::UserId sharer = 0;
  std::vector<sp::osn::UserId> receivers;
  Context ctx;
  Bytes object;
  std::vector<std::string> posts;              ///< rank -> post id (head only)
  std::unique_ptr<ServeCache> tail_cache;      ///< cache-on arm only
  std::map<std::uint64_t, std::uint64_t> tail_epoch;
  std::set<std::uint64_t> revoked;             ///< head ranks currently revoked
  std::uint64_t tail_hits = 0, tail_misses = 0;
};

/// Cold/warm calibration: measure each class's miss cost (and, cache-on,
/// hit cost) on probe accesses so the tail can draw realistic samples.
SamplePool calibrate(Arm& arm, const TraceGenerator& gen) {
  SamplePool pool;
  const Knowledge knows = Knowledge::full(arm.ctx);
  std::uint64_t c1_rank = 0, c2_rank = 0;
  for (std::uint64_t r = 0; r < arm.posts.size(); ++r) {
    if (gen.post_is_c2(r)) c2_rank = r; else c1_rank = r;
  }
  for (const bool c2 : {false, true}) {
    const std::uint64_t rank = c2 ? c2_rank : c1_rank;
    auto& miss = c2 ? pool.c2_miss : pool.c1_miss;
    auto& hit = c2 ? pool.c2_hit : pool.c1_hit;
    for (std::size_t i = 0; i < kCalibration; ++i) {
      // Refresh rotates the epoch, so the next access is a true cold miss.
      arm.session->refresh(arm.sharer, arm.posts[rank], arm.object, arm.ctx,
                           sp::net::pc_profile());
      const auto cold = arm.session->access(arm.receivers[0], arm.posts[rank], knows,
                                            sp::net::pc_profile());
      if (!cold.success()) std::fprintf(stderr, "calibration: cold access failed\n");
      miss.push_back(cost_of(cold.cost));
      const auto warm = arm.session->access(arm.receivers[0], arm.posts[rank], knows,
                                            sp::net::pc_profile());
      if (!warm.success()) std::fprintf(stderr, "calibration: warm access failed\n");
      hit.push_back(cost_of(warm.cost));  // == miss cost when the cache is off
    }
  }
  return pool;
}

struct ArmResult {
  sp::workload::CapacityResult capacity;
  double hit_rate = 0;
  double mean_cpu_ms = 0;
  double noqueue_p99_ms = 0;  ///< p99 of cpu+overlap, no queueing
  std::size_t events = 0;
  std::uint64_t cache_hits = 0, cache_lookups = 0;
};

/// Execute the trace once, collecting the per-event cost series; then
/// replay it through the virtual-time driver to find the capacity knee.
ArmResult run_arm(Arm& arm, const BenchConfig& bench, std::uint64_t users,
                  std::uint64_t catalog, double slo_ms, double* auto_slo_out) {
  WorkloadConfig wl;
  wl.graph.users = users;
  wl.graph.seed = "bench-pr10-u" + std::to_string(users);
  wl.catalog_posts = catalog;
  TraceGenerator gen(wl);
  arm.materialize(gen, bench.materialized);
  const SamplePool pool = calibrate(arm, gen);
  sp::crypto::Drbg tail_rng("bench-pr10-tail");  // same stream both arms

  const Knowledge knows = Knowledge::full(arm.ctx);
  const ServeCache::Stats cache0 =
      arm.cached_on ? arm.session->serve_cache()->stats() : ServeCache::Stats{};

  std::vector<double> gaps, cpu, overlap;
  gaps.reserve(bench.events);
  for (std::size_t i = 0; i < bench.events; ++i) {
    const Event event = gen.next();
    const bool head = event.post_rank < arm.posts.size();
    switch (event.kind) {
      case Event::Kind::kAccess: {
        Cost cost;
        if (head) {
          const auto result =
              arm.session->access(arm.receivers[event.receiver % kReceivers],
                                  arm.posts[event.post_rank], knows, sp::net::pc_profile());
          cost = cost_of(result.cost);
        } else if (arm.cached_on) {
          // Tail rank through the real cache policy, sampled costs.
          const std::string tail_entry_id = ServeCache::key(
              "tail-" + std::to_string(event.post_rank), arm.tail_epoch[event.post_rank],
              ServeCache::Kind::kC2Dem);
          if (arm.tail_cache->get(tail_entry_id, ServeCache::Kind::kC2Dem)) {
            ++arm.tail_hits;
            cost = pool.draw(event.c2 ? pool.c2_hit : pool.c1_hit, tail_rng);
          } else {
            ++arm.tail_misses;
            cost = pool.draw(event.c2 ? pool.c2_miss : pool.c1_miss, tail_rng);
            arm.tail_cache->put(tail_entry_id, ServeCache::Kind::kC2Dem, Bytes{1});
          }
        } else {
          cost = pool.draw(event.c2 ? pool.c2_miss : pool.c1_miss, tail_rng);
        }
        gaps.push_back(event.interarrival_unit);
        cpu.push_back(cost.cpu);
        overlap.push_back(cost.overlap);
        break;
      }
      case Event::Kind::kRefresh:
        // Sharer-side churn: restore the oldest revoked head post first (the
        // paper's refresh-after-revoke lifecycle), else rotate the event's
        // own post. Sharer cost is not serving latency — only the cache
        // invalidation it causes shapes the curve.
        if (!arm.revoked.empty()) {
          const std::uint64_t rank = *arm.revoked.begin();
          arm.revoked.erase(arm.revoked.begin());
          arm.session->refresh(arm.sharer, arm.posts[rank], arm.object, arm.ctx,
                               sp::net::pc_profile());
        } else if (head) {
          arm.session->refresh(arm.sharer, arm.posts[event.post_rank], arm.object, arm.ctx,
                               sp::net::pc_profile());
        } else if (arm.cached_on) {
          ++arm.tail_epoch[event.post_rank];
          arm.tail_cache->invalidate_post("tail-" + std::to_string(event.post_rank));
        }
        break;
      case Event::Kind::kRevoke:
        if (head) {
          if (arm.revoked.insert(event.post_rank).second) {
            arm.session->revoke(arm.sharer, arm.posts[event.post_rank]);
          }
        } else if (arm.cached_on) {
          ++arm.tail_epoch[event.post_rank];
          arm.tail_cache->invalidate_post("tail-" + std::to_string(event.post_rank));
        }
        break;
    }
  }

  ArmResult out;
  out.events = gaps.size();
  if (arm.cached_on) {
    const ServeCache::Stats s = arm.session->serve_cache()->stats();
    const auto sig = static_cast<std::size_t>(ServeCache::Kind::kC1Sig);
    const auto dem = static_cast<std::size_t>(ServeCache::Kind::kC2Dem);
    out.cache_hits = (s.hits[sig] - cache0.hits[sig]) + (s.hits[dem] - cache0.hits[dem]) +
                     arm.tail_hits;
    out.cache_lookups = out.cache_hits + (s.misses[sig] - cache0.misses[sig]) +
                        (s.misses[dem] - cache0.misses[dem]) + arm.tail_misses;
    if (out.cache_lookups > 0) {
      out.hit_rate =
          static_cast<double>(out.cache_hits) / static_cast<double>(out.cache_lookups);
    }
  }
  double cpu_sum = 0;
  std::vector<double> totals(cpu.size());
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    cpu_sum += cpu[i];
    totals[i] = cpu[i] + overlap[i];
  }
  out.mean_cpu_ms = cpu.empty() ? 0 : cpu_sum / static_cast<double>(cpu.size());
  std::sort(totals.begin(), totals.end());
  out.noqueue_p99_ms =
      totals.empty() ? 0
                     : totals[std::min(totals.size() - 1,
                                       static_cast<std::size_t>(std::ceil(
                                           0.99 * static_cast<double>(totals.size()))) -
                                           1)];
  if (auto_slo_out != nullptr) *auto_slo_out = 1.5 * out.noqueue_p99_ms;
  const double slo = slo_ms > 0 ? slo_ms : 1.5 * out.noqueue_p99_ms;
  out.capacity = sp::workload::find_capacity(gaps, cpu, overlap, kServers, slo);
  return out;
}

struct PointResult {
  std::uint64_t users = 0;
  std::uint64_t catalog = 0;
  double slo_ms = 0;
  ArmResult off, on;

  [[nodiscard]] double speedup() const {
    return off.capacity.capacity_rps > 0 ? on.capacity.capacity_rps / off.capacity.capacity_rps
                                         : 0;
  }
};

void emit_arm_json(std::FILE* out, const char* name, const ArmResult& a, bool last) {
  std::fprintf(out,
               "      \"%s\": {\"capacity_rps\": %.2f, \"p99_at_capacity_ms\": %.2f, "
               "\"noqueue_p99_ms\": %.2f, \"mean_cpu_ms\": %.3f, \"hit_rate\": %.4f, "
               "\"cache_hits\": %llu, \"cache_lookups\": %llu, \"events\": %zu, "
               "\"ladder_points\": %zu}%s\n",
               name, a.capacity.capacity_rps, a.capacity.at_capacity.p99_ms, a.noqueue_p99_ms,
               a.mean_cpu_ms, a.hit_rate, static_cast<unsigned long long>(a.cache_hits),
               static_cast<unsigned long long>(a.cache_lookups), a.events,
               a.capacity.ladder.size(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.quick = true;
      cfg.events = 150;
      cfg.materialized = 8;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else if (arg == "--slo-ms" && i + 1 < argc) {
      cfg.slo_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--slo-ms X]\n", argv[0]);
      return 2;
    }
  }

  // The curve: user counts ladder to the million-user headline. The graph
  // and trace are lazy, so the 1M point costs the same RAM as the 10k one;
  // the catalog grows with the population, which is what actually moves the
  // cache hit rate (a wider Zipf head is harder to keep resident).
  const std::vector<std::uint64_t> user_points = {10'000, 100'000, 1'000'000};
  std::printf("# Capacity curve: %zu events/arm/point, %zu materialized head ranks, "
              "%zu virtual servers, churn refresh=2%% revoke=0.5%%\n",
              cfg.events, cfg.materialized, kServers);
  std::printf("# %9s %9s %8s %12s %12s %8s %8s\n", "users", "catalog", "slo_ms",
              "off_rps", "on_rps", "speedup", "hit_rate");

  std::vector<PointResult> points;
  for (const std::uint64_t users : user_points) {
    PointResult point;
    point.users = users;
    point.catalog = std::clamp<std::uint64_t>(users / 100, 200, 10'000);
    // The cache-off arm fixes the SLO (auto mode): both arms are then held
    // to the same bar, which is what makes the speedup an apples-to-apples
    // capacity ratio.
    Arm off(false, users);
    double auto_slo = 0;
    point.off = run_arm(off, cfg, users, point.catalog, cfg.slo_ms, &auto_slo);
    point.slo_ms = cfg.slo_ms > 0 ? cfg.slo_ms : auto_slo;
    Arm on(true, users);
    point.on = run_arm(on, cfg, users, point.catalog, point.slo_ms, nullptr);
    std::printf("  %9llu %9llu %8.1f %12.2f %12.2f %7.2fx %7.1f%%\n",
                static_cast<unsigned long long>(users),
                static_cast<unsigned long long>(point.catalog), point.slo_ms,
                point.off.capacity.capacity_rps, point.on.capacity.capacity_rps,
                point.speedup(), 100.0 * point.on.hit_rate);
    points.push_back(std::move(point));
  }

  // Acceptance bars. The base-probe SLO check and a live hit rate hold in
  // every mode; the 1.5x speedup bar is asserted in full mode (quick mode
  // reports it — 150 events leave the ratio real but noisier).
  const PointResult& headline = points.back();
  bool ok = true;
  for (const PointResult& p : points) {
    if (p.off.capacity.capacity_rps <= 0 || p.on.capacity.capacity_rps <= 0) {
      std::fprintf(stderr, "users=%llu: SLO missed at the base probe — capacity is zero\n",
                   static_cast<unsigned long long>(p.users));
      ok = false;
    }
    if (p.on.hit_rate <= 0) {
      std::fprintf(stderr, "users=%llu: cache hit rate is zero — the cache tier is dead\n",
                   static_cast<unsigned long long>(p.users));
      ok = false;
    }
  }
  if (!cfg.quick && headline.speedup() < 1.5) {
    std::fprintf(stderr, "headline speedup %.2fx is below the 1.5x bar\n", headline.speedup());
    ok = false;
  }

  std::FILE* out = std::fopen(cfg.out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_capacity\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", cfg.quick ? "quick" : "full");
  std::fprintf(out, "  \"preset\": \"test-256bit\",\n");
  std::fprintf(out, "  \"servers\": %zu,\n", kServers);
  std::fprintf(out, "  \"events_per_arm\": %zu,\n", cfg.events);
  std::fprintf(out, "  \"materialized_head_ranks\": %zu,\n", cfg.materialized);
  std::fprintf(out, "  \"workload\": {\"zipf_s\": 1.1, \"c2_fraction\": 0.5, "
                    "\"refresh_fraction\": 0.02, \"revoke_fraction\": 0.005},\n");
  std::fprintf(out,
               "  \"latency_model\": \"measured CostLedger decomposition replayed through a "
               "deterministic virtual-time open-loop M/G/c simulation; capacity = max offered "
               "RPS with p99 <= SLO\",\n");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(out,
                 "    {\"users\": %llu, \"catalog_posts\": %llu, \"slo_p99_ms\": %.2f, "
                 "\"speedup\": %.3f,\n",
                 static_cast<unsigned long long>(p.users),
                 static_cast<unsigned long long>(p.catalog), p.slo_ms, p.speedup());
    emit_arm_json(out, "cache_off", p.off, false);
    emit_arm_json(out, "cache_on", p.on, true);
    std::fprintf(out, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"headline\": {\"users\": %llu, \"speedup\": %.3f, "
                    "\"hit_rate\": %.4f, \"bar_speedup_min\": 1.5},\n",
               static_cast<unsigned long long>(headline.users), headline.speedup(),
               headline.on.hit_rate);
  std::fprintf(out, "  \"metrics\": %s\n}\n",
               sp::obs::MetricsRegistry::global().to_json().c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", cfg.out_path.c_str());
  return ok ? 0 : 1;
}
