// Micro-benchmarks for the crypto substrate: the primitive costs that
// compose into the Fig. 10 curves (AES, hashes, BigInt modular arithmetic,
// curve ops, pairing).
#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/aes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/drbg.hpp"
#include "crypto/modes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha3.hpp"
#include "ec/pairing.hpp"
#include "ec/params.hpp"
#include "field/fp.hpp"
#include "sss/lagrange.hpp"
#include "sss/shamir.hpp"

namespace {

using namespace sp;

void BM_Sha256(benchmark::State& state) {
  crypto::Drbg rng("bm-sha256");
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha3_256(benchmark::State& state) {
  crypto::Drbg rng("bm-sha3");
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha3_256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha3_256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_AesCbcEncrypt(benchmark::State& state) {
  crypto::Drbg rng("bm-aes");
  const auto key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(100)->Arg(4096)->Arg(65536);

void BM_SealOpen(benchmark::State& state) {
  crypto::Drbg rng("bm-seal");
  const auto key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto env = crypto::seal(key, iv, data);
    benchmark::DoNotOptimize(crypto::open(key, env));
  }
}
BENCHMARK(BM_SealOpen)->Arg(100)->Arg(65536);

void BM_BigIntModPow512(benchmark::State& state) {
  const auto& params = ec::preset_params(ec::ParamPreset::kFull);
  crypto::Drbg rng("bm-modpow");
  const auto base = crypto::BigInt::from_bytes(rng.bytes(60));
  const auto exp = crypto::BigInt::from_bytes(rng.bytes(20));  // 160-bit exponent
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::mod_pow(base, exp, params.fp->p()));
  }
}
BENCHMARK(BM_BigIntModPow512);

void BM_FpMulMontgomery(benchmark::State& state) {
  const auto& params = ec::preset_params(ec::ParamPreset::kFull);
  crypto::Drbg rng("bm-fpmul");
  const auto a = field::Fp::random(params.fp, rng).value();
  const auto b = field::Fp::random(params.fp, rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(params.fp->mul_mod(a, b));
  }
}
BENCHMARK(BM_FpMulMontgomery);

void BM_FpMulBarrett(benchmark::State& state) {
  const auto& params = ec::preset_params(ec::ParamPreset::kFull);
  crypto::Drbg rng("bm-fpmul");
  const auto a = field::Fp::random(params.fp, rng).value();
  const auto b = field::Fp::random(params.fp, rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(params.fp->mul_mod_barrett(a, b));
  }
}
BENCHMARK(BM_FpMulBarrett);

void BM_FpPowBarrett(benchmark::State& state) {
  const auto& params = ec::preset_params(ec::ParamPreset::kFull);
  crypto::Drbg rng("bm-modpow");
  const auto base = crypto::BigInt::from_bytes(rng.bytes(60)).mod(params.fp->p());
  const auto exp = crypto::BigInt::from_bytes(rng.bytes(20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(params.fp->pow_mod_barrett(base, exp));
  }
}
BENCHMARK(BM_FpPowBarrett);

void BM_FpInv(benchmark::State& state) {
  const auto& params = ec::preset_params(ec::ParamPreset::kFull);
  crypto::Drbg rng("bm-fpinv");
  const auto a = field::Fp::random_nonzero(params.fp, rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(params.fp->inv_mod(a));
  }
}
BENCHMARK(BM_FpInv);

void BM_ScalarMul(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  crypto::Drbg rng("bm-mul");
  const auto g = curve.random_group_element(rng);
  const auto k = crypto::BigInt::from_bytes(rng.bytes(20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.mul(g, k));
  }
}
BENCHMARK(BM_ScalarMul);

void BM_ScalarMulFixedBase(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  crypto::Drbg rng("bm-mul-fb");
  const auto g = curve.random_group_element(rng);
  curve.precompute_fixed_base(g);
  const auto k = crypto::BigInt::from_bytes(rng.bytes(20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.mul(g, k));
  }
}
BENCHMARK(BM_ScalarMulFixedBase);

void BM_ScalarMulBinary(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  crypto::Drbg rng("bm-mul");
  const auto g = curve.random_group_element(rng);
  const auto k = crypto::BigInt::from_bytes(rng.bytes(20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.mul_binary(g, k));
  }
}
BENCHMARK(BM_ScalarMulBinary);

void BM_HashToGroup(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  crypto::Drbg rng("bm-h2g");
  std::uint64_t counter = 0;
  for (auto _ : state) {
    auto input = rng.bytes(16);
    input.push_back(static_cast<std::uint8_t>(counter++));
    benchmark::DoNotOptimize(curve.hash_to_group(input));
  }
}
BENCHMARK(BM_HashToGroup);

void BM_TatePairing(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  const ec::Pairing pairing(curve);
  crypto::Drbg rng("bm-pairing");
  const auto g = curve.random_group_element(rng);
  const auto h = curve.random_group_element(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing(g, h));
  }
}
BENCHMARK(BM_TatePairing);

// ---- PR 7: batch verification primitives -------------------------------

/// N independent full pairings (N Miller loops + N final exponentiations):
/// the pre-PR-7 cost of a k-leaf CP-ABE decrypt or a k-term verify product.
void BM_PairingProductNaive(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  const ec::Pairing pairing(curve);
  crypto::Drbg rng("bm-multi-pairing");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<ec::Point> ps, qs;
  for (std::size_t i = 0; i < n; ++i) {
    ps.push_back(curve.random_group_element(rng));
    qs.push_back(curve.random_group_element(rng));
  }
  for (auto _ : state) {
    auto acc = pairing.one();
    for (std::size_t i = 0; i < n; ++i) acc = acc * pairing(ps[i], qs[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PairingProductNaive)->Arg(2)->Arg(4)->Arg(8);

/// The same product as one multi-pairing: N Miller loops sharing ONE final
/// exponentiation, with Miller-line tables warmed for the fixed first
/// arguments. The CI smoke step asserts this beats BM_PairingProductNaive.
void BM_PairingProductBatched(benchmark::State& state) {
  const ec::Curve curve(ec::preset_params(ec::ParamPreset::kFull));
  const ec::Pairing pairing(curve);
  crypto::Drbg rng("bm-multi-pairing");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<ec::Pairing::Term> terms;
  for (std::size_t i = 0; i < n; ++i) {
    terms.push_back({curve.random_group_element(rng), curve.random_group_element(rng)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing.product(terms));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PairingProductBatched)->Arg(2)->Arg(4)->Arg(8);

/// Lagrange basis at x = 0 for k fresh abscissae, per-coefficient modular
/// inversions (the pre-PR-7 interpolate_at inner loop).
void BM_LagrangeBasisNaive(benchmark::State& state) {
  const auto field = field::make_fp(crypto::BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
  crypto::Drbg rng("bm-lagrange");
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<field::Fp> xs;
  for (std::size_t i = 0; i < k; ++i) xs.push_back(field::Fp::random_nonzero(field, rng));
  const field::Fp at = field::Fp::zero(field);
  for (auto _ : state) {
    std::vector<field::Fp> basis;
    basis.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      field::Fp acc = field::Fp::one(field);
      for (std::size_t m = 0; m < k; ++m) {
        if (m == j) continue;
        acc = acc * (at - xs[m]) * (xs[j] - xs[m]).inv();
      }
      basis.push_back(acc);
    }
    benchmark::DoNotOptimize(basis);
  }
}
BENCHMARK(BM_LagrangeBasisNaive)->Arg(4)->Arg(8)->Arg(16);

/// Batched basis build: prefix/suffix numerator products + one Montgomery
/// batch inversion for all k denominators.
void BM_LagrangeBasisBatched(benchmark::State& state) {
  const auto field = field::make_fp(crypto::BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
  crypto::Drbg rng("bm-lagrange");
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<field::Fp> xs;
  for (std::size_t i = 0; i < k; ++i) xs.push_back(field::Fp::random_nonzero(field, rng));
  const field::Fp at = field::Fp::zero(field);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sss::LagrangeCache::compute(field, xs, at));
  }
}
BENCHMARK(BM_LagrangeBasisBatched)->Arg(4)->Arg(8)->Arg(16);

/// The warm path the serving stack actually hits: same abscissa set every
/// call, answered from the per-Shamir cache (one map lookup + remap).
void BM_LagrangeBasisCached(benchmark::State& state) {
  const auto field = field::make_fp(crypto::BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
  crypto::Drbg rng("bm-lagrange");
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<field::Fp> xs;
  for (std::size_t i = 0; i < k; ++i) xs.push_back(field::Fp::random_nonzero(field, rng));
  const field::Fp at = field::Fp::zero(field);
  sss::LagrangeCache cache;
  (void)cache.basis(field, xs, at);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.basis(field, xs, at));
  }
}
BENCHMARK(BM_LagrangeBasisCached)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
