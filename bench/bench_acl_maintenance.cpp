// The paper's motivating scalability claim (§I/§II): "Increasingly large,
// and highly dynamic, list of friends or social contacts can lead to a
// burdensome maintenance of such access lists", while social puzzles need
// none — the context does the selection.
//
// This harness simulates an OSN user whose friend list churns over a year
// of sharing and counts the ACL update operations an ACL-based system needs
// (per-post audience curation + retroactive fixes when relationships
// change) versus a social-puzzle user (zero — plus the optional refresh).
#include <cstdio>

#include "crypto/drbg.hpp"

namespace {

struct Scenario {
  std::size_t initial_friends;
  std::size_t posts_per_year;
  double churn_per_month;  ///< fraction of the friend list added/removed monthly
};

struct AclCost {
  std::size_t curation_ops = 0;   ///< per-post audience selections
  std::size_t retro_fixes = 0;    ///< old posts re-audited after churn
};

AclCost simulate_acl(const Scenario& s, sp::crypto::Drbg& rng) {
  AclCost cost;
  std::size_t friends = s.initial_friends;
  std::size_t live_posts = 0;
  const std::size_t posts_per_month = s.posts_per_year / 12;
  for (int month = 0; month < 12; ++month) {
    // Each new post: the sharer picks its audience from the full list —
    // one curation decision per candidate friend (the study the paper cites
    // found users simply give up and over-share instead).
    for (std::size_t post = 0; post < posts_per_month; ++post) {
      cost.curation_ops += friends;
      ++live_posts;
    }
    // Churn: each added/removed friend forces a re-audit of existing
    // audiences ("should the ex see the old albums?").
    const std::size_t churned =
        static_cast<std::size_t>(static_cast<double>(friends) * s.churn_per_month) +
        (rng.uniform(2));
    cost.retro_fixes += churned * live_posts;
    friends += rng.uniform(2) ? churned : 0;  // net growth some months
  }
  return cost;
}

}  // namespace

int main() {
  std::printf("# ACL maintenance vs social puzzles: operations per user-year\n");
  std::printf("# columns: friends posts/yr churn%%  acl_curation acl_retrofix acl_total  "
              "puzzle_context_inputs\n");
  sp::crypto::Drbg rng("acl-sim");
  const Scenario scenarios[] = {
      {50, 24, 0.02}, {150, 52, 0.03}, {500, 104, 0.04}, {1500, 200, 0.05},
  };
  for (const auto& s : scenarios) {
    const AclCost acl = simulate_acl(s, rng);
    // Social puzzles: the sharer types N question/answer pairs per post
    // (N = 5 here) and never touches an audience list again.
    const std::size_t puzzle_inputs = s.posts_per_year * 5;
    std::printf("%8zu %8zu %6.0f%%  %12zu %12zu %9zu  %21zu\n", s.initial_friends,
                s.posts_per_year, s.churn_per_month * 100, acl.curation_ops, acl.retro_fixes,
                acl.curation_ops + acl.retro_fixes, puzzle_inputs);
  }
  std::printf("# expected shape: ACL cost grows ~linearly with friends x posts and explodes "
              "with churn; puzzle cost depends only on posts\n");
  return 0;
}
